#include "sched/batch_driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "io/table_csv.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace cps {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Fixed trie-decomposition target for batch items (unless the caller
/// pinned synthesis.subtree_frontier themselves). Pool-size-independent
/// on purpose: the SAME subtree jobs run at every thread count — on pool
/// workers when the batch has a runtime, inline otherwise — which is what
/// keeps batch JSON byte-identical while still exposing inner work for
/// stealing. Small, because per-item parallelism only has to fill the
/// gaps work-stealing finds between whole items.
constexpr std::size_t kBatchSubtreeFrontier = 4;

void add_item_stats(BatchSummary& s, const BatchItem& item) {
  ++s.count;
  s.retries += item.retries;
  if (!item.ok) {
    if (item.code == ErrorCode::kDeadlineExceeded) ++s.timeouts;
    if (item.code == ErrorCode::kCancelled) ++s.cancelled;
    return;
  }
  ++s.ok_count;
  s.delta_m.add(static_cast<double>(item.delta_m));
  s.delta_max.add(static_cast<double>(item.delta_max));
  s.increase_percent.add(item.increase_percent);
  s.tasks.add(static_cast<double>(item.tasks));
  s.paths.add(static_cast<double>(item.paths));
  s.table_entries.add(static_cast<double>(item.table_entries));
  s.expand_ms.add(item.expand_ms);
  s.enumerate_ms.add(item.enumerate_ms);
  s.schedule_ms.add(item.schedule_ms);
  s.merge_ms.add(item.merge_ms);
  s.validate_ms.add(item.validate_ms);
  s.total_ms.add(item.total_ms);
}

void write_stat(JsonWriter& w, const std::string& name,
                const StatAccumulator& acc) {
  w.key(name).begin_object();
  w.field("count", acc.count());
  if (!acc.empty()) {
    w.field("mean", acc.mean());
    w.field("stddev", acc.stddev());
    w.field("min", acc.min());
    w.field("max", acc.max());
    w.field("median", acc.median());
  }
  w.end_object();
}

}  // namespace

void write_batch_item_json(JsonWriter& w, const BatchItem& item,
                           const BatchJsonOptions& options) {
  w.begin_object();
  w.field("index", item.index);
  w.field("seed", item.seed);
  w.field("ok", item.ok);
  if (!item.ok) {
    // Typed code first: tooling switches on it; the message is for humans.
    w.field("error_code", to_string(item.code));
    w.field("error", item.error);
    w.field("attempts", item.attempts);
    w.end_object();
    return;
  }
  // Successful items serialize their status (kOk, or kPathBudgetExceeded
  // for bounded coverage) but never their attempt/retry counters: a
  // transiently-faulted item that succeeded on retry must stay
  // byte-identical to the same item in a never-faulted run.
  w.field("status", to_string(item.code));
  if (item.code != ErrorCode::kOk) {
    w.field("coverage", item.coverage);
    w.field("total_leaves", item.total_leaves);
  }
  w.field("processes", item.processes);
  w.field("tasks", item.tasks);
  w.field("conditions", item.conditions);
  w.field("paths", item.paths);
  w.field("table_entries", item.table_entries);
  w.field("delta_m", static_cast<std::int64_t>(item.delta_m));
  w.field("delta_max", static_cast<std::int64_t>(item.delta_max));
  w.field("increase_percent", item.increase_percent);
  w.key("merge").begin_object();
  w.field("backsteps", item.merge.backsteps);
  w.field("adjustments", item.merge.adjustments);
  w.field("locks", item.merge.locks);
  w.field("conflicts", item.merge.conflicts);
  w.field("conflict_moves", item.merge.conflict_moves);
  w.field("unresolved_conflicts", item.merge.unresolved_conflicts);
  w.field("relaxed_locks", item.merge.relaxed_locks);
  w.field("column_clashes", item.merge.column_clashes);
  w.field("speculative_hits", item.merge.speculative_hits);
  w.field("speculative_misses", item.merge.speculative_misses);
  w.end_object();
  if (options.include_resume_counters) {
    w.key("cover_cache").begin_object();
    w.field("hits", item.cover_cache.hits);
    w.field("misses", item.cover_cache.misses);
    w.field("entries", item.cover_cache.entries);
    w.field("resets", item.cover_cache.resets);
    w.end_object();
  }
  if (options.include_reuse_counters) {
    w.key("workspace").begin_object();
    w.field("runs", item.workspace.runs);
    w.field("reuse_hits", item.workspace.reuse_hits);
    w.field("resumes", item.workspace.resumes);
    w.field("full_reuses", item.workspace.full_reuses);
    w.field("from_scratch", item.workspace.from_scratch);
    w.field("resumed_steps", item.workspace.resumed_steps);
    w.end_object();
  }
  if (options.include_resume_counters) {
    w.key("path_tree").begin_object();
    w.field("prefix_resumes", item.tree.prefix_resumes);
    w.field("resumed_steps", item.tree.resumed_steps);
    w.field("subtrees_parallel", item.tree.subtrees_parallel);
    w.end_object();
  }
  if (options.include_timing) {
    w.key("timing_ms").begin_object();
    w.field("expand", item.expand_ms);
    w.field("enumerate", item.enumerate_ms);
    w.field("schedule", item.schedule_ms);
    w.field("merge", item.merge_ms);
    w.field("validate", item.validate_ms);
    w.field("total", item.total_ms);
    w.end_object();
  }
  w.end_object();
}

std::string batch_item_to_json(const BatchItem& item,
                               const BatchJsonOptions& options) {
  JsonWriter w(options.indent);
  write_batch_item_json(w, item, options);
  return w.str();
}

namespace {

/// Deterministic retry backoff: a pure function of the item seed and the
/// (0-based) attempt that just failed — never of the clock — so retry
/// schedules reproduce exactly. Exponential from a small seed-derived
/// base, capped at 8 ms.
std::uint64_t retry_backoff_ms(std::uint64_t seed, std::size_t attempt) {
  const std::uint64_t base = 1 + (seed & 3);
  const std::uint64_t shifted =
      attempt < 8 ? base << attempt : std::uint64_t{8};
  return std::min<std::uint64_t>(shifted, 8);
}

// ---- Schedule-cache exact tier: key encoding + payload codec ----------
//
// The exact key is the canonical graph encoding followed by every option
// field that affects a *serialized item*: not just the schedule/table
// (priority policy, engine, merge order, seeds, path budget) but also
// counter-shaping knobs (merge execution mode decides the speculative
// counters; the decomposition target decides PathTreeStats). Interrupt
// limits (deadline, step budget, cancel) are deliberately absent — a
// tripped item is never ok, and only ok items are cached. Index and seed
// are absent too: that is the point of content addressing — the same
// graph requested under a different index replays the same result.

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t read_u64(std::string_view in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

std::string exact_key_encoding(const Cpg& g,
                               const CoSynthesisOptions& synthesis) {
  std::string key = canonical_encoding(g);
  key.append("OPT1");
  const auto u8 = [&key](std::uint8_t v) {
    key.push_back(static_cast<char>(v));
  };
  u8(static_cast<std::uint8_t>(synthesis.path_priority));
  u8(static_cast<std::uint8_t>(synthesis.merge.selection));
  u8(static_cast<std::uint8_t>(synthesis.merge.ready));
  u8(static_cast<std::uint8_t>(synthesis.merge.execution));
  u8(static_cast<std::uint8_t>(synthesis.merge.resume));
  u8(synthesis.merge.trace ? 1 : 0);
  u8(synthesis.validate ? 1 : 0);
  u8(static_cast<std::uint8_t>(synthesis.on_budget));
  u8(static_cast<std::uint8_t>(synthesis.path_scheduling));
  append_u64(key, synthesis.merge.random_seed);
  append_u64(key, effective_max_paths(synthesis));
  append_u64(key, synthesis.subtree_frontier);
  append_u64(key, synthesis.schedule_threads);
  return key;
}

// Payload: every result field of an ok BatchItem (doubles as IEEE bit
// patterns for exact round-trips) plus the rendered CSV. Identity fields
// (index, seed) and attempt/timing fields are excluded — the former come
// from the replaying request, the latter are wall-clock.
constexpr std::uint64_t kPayloadVersion = 1;

std::string encode_cached_item(const BatchItem& item, std::string_view csv) {
  std::string out;
  append_u64(out, kPayloadVersion);
  out.push_back(static_cast<char>(item.code));
  const auto bits = [&out](double d) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(d), "IEEE-754 double expected");
    std::memcpy(&b, &d, sizeof(b));
    append_u64(out, b);
  };
  bits(item.coverage);
  append_u64(out, item.total_leaves);
  append_u64(out, item.processes);
  append_u64(out, item.tasks);
  append_u64(out, item.conditions);
  append_u64(out, item.paths);
  append_u64(out, item.table_entries);
  append_u64(out, static_cast<std::uint64_t>(item.delta_m));
  append_u64(out, static_cast<std::uint64_t>(item.delta_max));
  bits(item.increase_percent);
  append_u64(out, item.merge.backsteps);
  append_u64(out, item.merge.adjustments);
  append_u64(out, item.merge.locks);
  append_u64(out, item.merge.conflicts);
  append_u64(out, item.merge.conflict_moves);
  append_u64(out, item.merge.unresolved_conflicts);
  append_u64(out, item.merge.relaxed_locks);
  append_u64(out, item.merge.column_clashes);
  append_u64(out, item.merge.speculative_hits);
  append_u64(out, item.merge.speculative_misses);
  append_u64(out, item.cover_cache.hits);
  append_u64(out, item.cover_cache.misses);
  append_u64(out, item.cover_cache.entries);
  append_u64(out, item.cover_cache.resets);
  append_u64(out, item.workspace.runs);
  append_u64(out, item.workspace.reuse_hits);
  append_u64(out, item.workspace.resumes);
  append_u64(out, item.workspace.full_reuses);
  append_u64(out, item.workspace.from_scratch);
  append_u64(out, item.workspace.resumed_steps);
  append_u64(out, item.workspace.checkpoints);
  append_u64(out, item.tree.prefix_resumes);
  append_u64(out, item.tree.resumed_steps);
  append_u64(out, item.tree.subtrees_parallel);
  append_u64(out, csv.size());
  out.append(csv);
  return out;
}

bool decode_cached_item(std::string_view in, BatchItem* item,
                        std::string* csv) {
  // 1 code byte + 35 u64 fields (version, 33 scalars, csv length).
  constexpr std::size_t kFixed = 1 + 35 * 8;
  if (in.size() < kFixed || read_u64(in, 0) != kPayloadVersion) return false;
  std::size_t at = 8;
  item->code = static_cast<ErrorCode>(static_cast<unsigned char>(in[at]));
  at += 1;
  const auto u64 = [&] {
    const std::uint64_t v = read_u64(in, at);
    at += 8;
    return v;
  };
  const auto dbl = [&] {
    const std::uint64_t b = u64();
    double d;
    std::memcpy(&d, &b, sizeof(d));
    return d;
  };
  item->ok = true;
  item->coverage = dbl();
  item->total_leaves = u64();
  item->processes = u64();
  item->tasks = u64();
  item->conditions = u64();
  item->paths = u64();
  item->table_entries = u64();
  item->delta_m = static_cast<Time>(u64());
  item->delta_max = static_cast<Time>(u64());
  item->increase_percent = dbl();
  item->merge.backsteps = u64();
  item->merge.adjustments = u64();
  item->merge.locks = u64();
  item->merge.conflicts = u64();
  item->merge.conflict_moves = u64();
  item->merge.unresolved_conflicts = u64();
  item->merge.relaxed_locks = u64();
  item->merge.column_clashes = u64();
  item->merge.speculative_hits = u64();
  item->merge.speculative_misses = u64();
  item->cover_cache.hits = u64();
  item->cover_cache.misses = u64();
  item->cover_cache.entries = u64();
  item->cover_cache.resets = u64();
  item->workspace.runs = u64();
  item->workspace.reuse_hits = u64();
  item->workspace.resumes = u64();
  item->workspace.full_reuses = u64();
  item->workspace.from_scratch = u64();
  item->workspace.resumed_steps = u64();
  item->workspace.checkpoints = u64();
  item->tree.prefix_resumes = u64();
  item->tree.resumed_steps = u64();
  item->tree.subtrees_parallel = u64();
  const std::uint64_t csv_len = u64();
  if (in.size() - at != csv_len) return false;
  csv->assign(in.substr(at));
  return true;
}

}  // namespace

BatchItem run_batch_item(const BatchConfig& config, std::size_t index,
                         ThreadPool* runtime) {
  return run_batch_item(config, index, runtime, nullptr, nullptr);
}

BatchItem run_batch_item(const BatchConfig& config, std::size_t index,
                         ThreadPool* runtime,
                         const BatchItemObserver& observe) {
  return run_batch_item(config, index, runtime, observe, nullptr);
}

BatchItem run_batch_item(const BatchConfig& config, std::size_t index,
                         ThreadPool* runtime, const BatchItemObserver& observe,
                         std::string* table_csv) {
  BatchItem item;
  item.index = index;
  item.seed = config.base_seed + index;
  const auto t_begin = clock_type::now();
  const std::size_t max_attempts = 1 + config.max_retries;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++item.attempts;
    // One budget per attempt: a fresh deadline per retry (a timed-out
    // attempt would otherwise make every retry trip instantly), the
    // shared batch cancel token, and the caller's step/path limits.
    RunBudget budget;
    budget.token = config.cancel;
    if (config.deadline_ms > 0.0) {
      budget.set_deadline_after(config.deadline_ms);
    }
    if (config.synthesis.budget != nullptr) {
      budget.max_steps = config.synthesis.budget->max_steps;
      budget.max_paths = config.synthesis.budget->max_paths;
    }
    const bool own_budget = config.cancel != nullptr ||
                            config.deadline_ms > 0.0 ||
                            config.synthesis.budget != nullptr;
    try {
      // Fail fast on a cancelled batch: not-yet-started items report
      // kCancelled without generating their graphs.
      if (config.cancel != nullptr && config.cancel->cancelled()) {
        throw CancelledError("batch cancelled");
      }
      CPS_FAULT_POINT("batch.item");
      Rng rng(item.seed);
      const Architecture arch = generate_random_architecture(rng, config.arch);
      const Cpg g = generate_random_cpg(arch, config.cpg, rng);

      // Every item co-synthesizes on its own engine workspace: a workspace
      // is single-threaded and sharing one across pool workers would both
      // race and make the per-item reuse counters depend on scheduling
      // (breaking the byte-identical JSON guarantee). Inner parallelism —
      // subtree jobs and speculative merge adjustments — rides the shared
      // batch runtime via schedule_pool, with the trie decomposition pinned
      // to a fixed frontier so the split (and with it every per-item
      // counter) cannot depend on pool size. Items do not retain their path
      // vectors — thousand-graph batches would otherwise carry
      // O(paths × depth) dead weight apiece.
      CoSynthesisOptions synthesis = config.synthesis;
      synthesis.workspace = nullptr;
      synthesis.schedule_threads = 1;
      synthesis.schedule_pool = runtime;
      synthesis.keep_paths = false;
      synthesis.budget = own_budget ? &budget : nullptr;
      synthesis.schedule_cache = config.cache;
      if (synthesis.subtree_frontier == 0) {
        synthesis.subtree_frontier = kBatchSubtreeFrontier;
      }

      // Exact-tier lookup: the key is the canonical graph encoding plus
      // the post-override options (what actually runs), so a hit replays
      // the recorded item + CSV without touching the engine. The cache
      // verifies the full key encoding byte-for-byte — a digest collision
      // degrades to a miss, never to a wrong result.
      std::string cache_key;
      Digest128 cache_digest;
      if (config.cache != nullptr) {
        cache_key = exact_key_encoding(g, synthesis);
        cache_digest = digest_of(cache_key);
        std::string payload;
        if (config.cache->lookup(cache_digest, cache_key, &payload)) {
          std::string csv;
          BatchItem cached;
          if (decode_cached_item(payload, &cached, &csv)) {
            cached.index = item.index;
            cached.seed = item.seed;
            cached.attempts = item.attempts;
            if (table_csv != nullptr) *table_csv = std::move(csv);
            cached.total_ms = ms_between(t_begin, clock_type::now());
            return cached;
          }
          // Undecodable payload (foreign writer?): recompute and replace.
        }
      }

      const CoSynthesisResult result = schedule_cpg(g, synthesis);

      item.ok = true;
      item.code = result.status;  // kOk, or kPathBudgetExceeded (bounded)
      item.error.clear();
      item.coverage = result.coverage;
      item.total_leaves = result.total_leaves;
      item.processes = g.process_count();
      item.tasks = result.flat->task_count();
      item.conditions = g.conditions().size();
      item.paths = result.path_count;
      item.table_entries = result.table.entry_count();
      item.delta_m = result.delays.delta_m;
      item.delta_max = result.delays.delta_max;
      item.increase_percent = result.delays.increase_percent;
      item.merge = result.merge_stats;
      item.cover_cache = result.cover_cache;
      item.workspace = result.workspace;
      item.tree = result.tree;
      item.expand_ms = result.timings.expand_ms;
      item.enumerate_ms = result.timings.enumerate_ms;
      item.schedule_ms = result.timings.schedule_ms;
      item.merge_ms = result.timings.merge_ms;
      item.validate_ms = result.timings.validate_ms;
      // Render the CSV while the table is alive. Cached payloads always
      // carry it (a later request for the same graph may ask for CSV even
      // though this one did not); ~tens of bytes per table entry.
      std::string csv;
      if (config.cache != nullptr || table_csv != nullptr) {
        csv = table_csv_string(result.table);
      }
      if (config.cache != nullptr) {
        config.cache->insert(cache_digest, cache_key,
                             encode_cached_item(item, csv));
      }
      if (table_csv != nullptr) *table_csv = std::move(csv);
      // While `g`/`arch` are alive: the result's FlatGraph points at them.
      if (observe) observe(result);
      break;
    } catch (const InjectedFault& e) {
      item.ok = false;
      item.code = ErrorCode::kInjectedFault;
      item.error = e.what();
      if (e.transient() && attempt + 1 < max_attempts) {
        const std::uint64_t backoff = retry_backoff_ms(item.seed, attempt);
        item.backoff_ms += backoff;
        ++item.retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        continue;
      }
      break;
    } catch (const Error& e) {
      item.ok = false;
      item.code = e.code();
      item.error = e.what();
      break;
    } catch (const std::exception& e) {
      item.ok = false;
      item.code = ErrorCode::kInternal;
      item.error = e.what();
      break;
    }
  }
  item.total_ms = ms_between(t_begin, clock_type::now());
  return item;
}

BatchResult run_batch(const BatchConfig& config) {
  BatchResult result;
  result.config = config;
  result.items.resize(config.count);

  std::size_t threads = ThreadPool::resolve_threads(config.threads);
  threads = std::min(threads, std::max<std::size_t>(config.count, 1));

  const auto t_begin = clock_type::now();
  if (config.count > 0) {
    if (threads <= 1) {
      // Serial reference: no pool at all. Items still run the same fixed
      // trie decomposition, just inline — so the results (and the JSON,
      // minus timing) match the pooled run byte for byte.
      for (std::size_t i = 0; i < config.count; ++i) {
        result.items[i] = run_batch_item(config, i, nullptr);
      }
    } else {
      // One runtime for everything. Whole items are kLow so the stealable
      // backlog of graphs never starves inner work: an item's subtree
      // jobs (kNormal) and speculative merge adjustments (kHigh) always
      // jump the queue, and idle workers fall back to stealing the next
      // graph. The calling thread participates in parallel_for, so the
      // pool only needs threads - 1 workers to reach the requested
      // parallelism.
      ThreadPool pool(threads - 1);
      pool.parallel_for(
          config.count,
          [&](std::size_t i) {
            result.items[i] = run_batch_item(config, i, &pool);
          },
          TaskPriority::kLow);
      // Drain before snapshotting: parallel_for joined the items, but
      // only an idle pool guarantees submitted == executed (+ cancelled)
      // with pending == 0 — the balanced snapshot the JSON reports.
      pool.wait_idle();
      result.summary.pool = pool.stats();
    }
  }
  result.summary.wall_ms = ms_between(t_begin, clock_type::now());
  if (config.cache != nullptr) {
    result.summary.cache_enabled = true;
    result.summary.cache = config.cache->stats();
  }

  for (const BatchItem& item : result.items) {
    add_item_stats(result.summary, item);
  }
  if (result.summary.wall_ms > 0.0) {
    result.summary.graphs_per_second =
        1000.0 * static_cast<double>(result.summary.ok_count) /
        result.summary.wall_ms;
  }
  return result;
}

std::string batch_result_to_json(const BatchResult& result,
                                 const BatchJsonOptions& options) {
  const BatchSummary& s = result.summary;
  JsonWriter w(options.indent);
  w.begin_object();

  w.key("config").begin_object();
  w.field("count", result.config.count);
  w.field("base_seed", result.config.base_seed);
  w.field("processes", result.config.cpg.process_count);
  w.field("paths", result.config.cpg.path_count);
  w.field("distribution", to_string(result.config.cpg.distribution));
  w.field("ready_selection", to_string(result.config.synthesis.merge.ready));
  w.field("path_scheduling",
          to_string(result.config.synthesis.path_scheduling));
  w.field("path_selection",
          to_string(result.config.synthesis.merge.selection));
  w.field("merge_execution",
          to_string(result.config.synthesis.merge.execution));
  w.field("validate", result.config.synthesis.validate);
  w.end_object();

  w.key("summary").begin_object();
  w.field("count", s.count);
  w.field("ok", s.ok_count);
  w.field("timeouts", s.timeouts);
  w.field("cancelled", s.cancelled);
  w.field("retries", s.retries);
  write_stat(w, "delta_m", s.delta_m);
  write_stat(w, "delta_max", s.delta_max);
  write_stat(w, "increase_percent", s.increase_percent);
  write_stat(w, "tasks", s.tasks);
  write_stat(w, "paths", s.paths);
  write_stat(w, "table_entries", s.table_entries);
  if (options.include_timing) {
    w.field("wall_ms", s.wall_ms);
    w.field("graphs_per_second", s.graphs_per_second);
    w.key("stage_ms").begin_object();
    write_stat(w, "expand", s.expand_ms);
    write_stat(w, "enumerate", s.enumerate_ms);
    write_stat(w, "schedule", s.schedule_ms);
    write_stat(w, "merge", s.merge_ms);
    write_stat(w, "validate", s.validate_ms);
    write_stat(w, "total", s.total_ms);
    w.end_object();
    // Work-stealing runtime counters ride the include_timing gate: like
    // wall_ms they are a legitimate race (who stole what when), so they
    // must stay out of byte-identical golden output.
    w.key("runtime").begin_object();
    w.field("submitted", s.pool.submitted);
    w.field("executed", s.pool.executed);
    w.field("local_hits", s.pool.local_hits);
    w.field("steals", s.pool.steals);
    w.field("injected", s.pool.injected);
    w.field("help_runs", s.pool.help_runs);
    w.field("max_help_depth", s.pool.max_help_depth);
    w.field("pending", s.pool.pending);
    w.field("cancelled_tasks", s.pool.cancelled_tasks);
    w.field("dropped_errors", s.pool.dropped_errors);
    w.end_object();
    // Schedule-cache counters ride the same gate: deterministic for an
    // isolated batch, but a shared (daemon) cache carries earlier traffic.
    if (s.cache_enabled) {
      w.key("cache").begin_object();
      write_cache_stats_json(w, s.cache);
      w.end_object();
    }
  }
  w.end_object();

  if (options.include_items) {
    w.key("items").begin_array();
    for (const BatchItem& item : result.items) {
      write_batch_item_json(w, item, options);
    }
    w.end_array();
  }

  w.end_object();
  return w.str() + "\n";
}

}  // namespace cps
