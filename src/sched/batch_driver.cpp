#include "sched/batch_driver.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace cps {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Fixed trie-decomposition target for batch items (unless the caller
/// pinned synthesis.subtree_frontier themselves). Pool-size-independent
/// on purpose: the SAME subtree jobs run at every thread count — on pool
/// workers when the batch has a runtime, inline otherwise — which is what
/// keeps batch JSON byte-identical while still exposing inner work for
/// stealing. Small, because per-item parallelism only has to fill the
/// gaps work-stealing finds between whole items.
constexpr std::size_t kBatchSubtreeFrontier = 4;

void add_item_stats(BatchSummary& s, const BatchItem& item) {
  ++s.count;
  s.retries += item.retries;
  if (!item.ok) {
    if (item.code == ErrorCode::kDeadlineExceeded) ++s.timeouts;
    if (item.code == ErrorCode::kCancelled) ++s.cancelled;
    return;
  }
  ++s.ok_count;
  s.delta_m.add(static_cast<double>(item.delta_m));
  s.delta_max.add(static_cast<double>(item.delta_max));
  s.increase_percent.add(item.increase_percent);
  s.tasks.add(static_cast<double>(item.tasks));
  s.paths.add(static_cast<double>(item.paths));
  s.table_entries.add(static_cast<double>(item.table_entries));
  s.expand_ms.add(item.expand_ms);
  s.enumerate_ms.add(item.enumerate_ms);
  s.schedule_ms.add(item.schedule_ms);
  s.merge_ms.add(item.merge_ms);
  s.validate_ms.add(item.validate_ms);
  s.total_ms.add(item.total_ms);
}

void write_stat(JsonWriter& w, const std::string& name,
                const StatAccumulator& acc) {
  w.key(name).begin_object();
  w.field("count", acc.count());
  if (!acc.empty()) {
    w.field("mean", acc.mean());
    w.field("stddev", acc.stddev());
    w.field("min", acc.min());
    w.field("max", acc.max());
    w.field("median", acc.median());
  }
  w.end_object();
}

}  // namespace

void write_batch_item_json(JsonWriter& w, const BatchItem& item,
                           const BatchJsonOptions& options) {
  w.begin_object();
  w.field("index", item.index);
  w.field("seed", item.seed);
  w.field("ok", item.ok);
  if (!item.ok) {
    // Typed code first: tooling switches on it; the message is for humans.
    w.field("error_code", to_string(item.code));
    w.field("error", item.error);
    w.field("attempts", item.attempts);
    w.end_object();
    return;
  }
  // Successful items serialize their status (kOk, or kPathBudgetExceeded
  // for bounded coverage) but never their attempt/retry counters: a
  // transiently-faulted item that succeeded on retry must stay
  // byte-identical to the same item in a never-faulted run.
  w.field("status", to_string(item.code));
  if (item.code != ErrorCode::kOk) {
    w.field("coverage", item.coverage);
    w.field("total_leaves", item.total_leaves);
  }
  w.field("processes", item.processes);
  w.field("tasks", item.tasks);
  w.field("conditions", item.conditions);
  w.field("paths", item.paths);
  w.field("table_entries", item.table_entries);
  w.field("delta_m", static_cast<std::int64_t>(item.delta_m));
  w.field("delta_max", static_cast<std::int64_t>(item.delta_max));
  w.field("increase_percent", item.increase_percent);
  w.key("merge").begin_object();
  w.field("backsteps", item.merge.backsteps);
  w.field("adjustments", item.merge.adjustments);
  w.field("locks", item.merge.locks);
  w.field("conflicts", item.merge.conflicts);
  w.field("conflict_moves", item.merge.conflict_moves);
  w.field("unresolved_conflicts", item.merge.unresolved_conflicts);
  w.field("relaxed_locks", item.merge.relaxed_locks);
  w.field("column_clashes", item.merge.column_clashes);
  w.field("speculative_hits", item.merge.speculative_hits);
  w.field("speculative_misses", item.merge.speculative_misses);
  w.end_object();
  w.key("cover_cache").begin_object();
  w.field("hits", item.cover_cache.hits);
  w.field("misses", item.cover_cache.misses);
  w.field("entries", item.cover_cache.entries);
  w.field("resets", item.cover_cache.resets);
  w.end_object();
  if (options.include_reuse_counters) {
    w.key("workspace").begin_object();
    w.field("runs", item.workspace.runs);
    w.field("reuse_hits", item.workspace.reuse_hits);
    w.field("resumes", item.workspace.resumes);
    w.field("full_reuses", item.workspace.full_reuses);
    w.field("from_scratch", item.workspace.from_scratch);
    w.field("resumed_steps", item.workspace.resumed_steps);
    w.end_object();
  }
  w.key("path_tree").begin_object();
  w.field("prefix_resumes", item.tree.prefix_resumes);
  w.field("resumed_steps", item.tree.resumed_steps);
  w.field("subtrees_parallel", item.tree.subtrees_parallel);
  w.end_object();
  if (options.include_timing) {
    w.key("timing_ms").begin_object();
    w.field("expand", item.expand_ms);
    w.field("enumerate", item.enumerate_ms);
    w.field("schedule", item.schedule_ms);
    w.field("merge", item.merge_ms);
    w.field("validate", item.validate_ms);
    w.field("total", item.total_ms);
    w.end_object();
  }
  w.end_object();
}

std::string batch_item_to_json(const BatchItem& item,
                               const BatchJsonOptions& options) {
  JsonWriter w(options.indent);
  write_batch_item_json(w, item, options);
  return w.str();
}

namespace {

/// Deterministic retry backoff: a pure function of the item seed and the
/// (0-based) attempt that just failed — never of the clock — so retry
/// schedules reproduce exactly. Exponential from a small seed-derived
/// base, capped at 8 ms.
std::uint64_t retry_backoff_ms(std::uint64_t seed, std::size_t attempt) {
  const std::uint64_t base = 1 + (seed & 3);
  const std::uint64_t shifted =
      attempt < 8 ? base << attempt : std::uint64_t{8};
  return std::min<std::uint64_t>(shifted, 8);
}

}  // namespace

BatchItem run_batch_item(const BatchConfig& config, std::size_t index,
                         ThreadPool* runtime) {
  return run_batch_item(config, index, runtime, nullptr);
}

BatchItem run_batch_item(const BatchConfig& config, std::size_t index,
                         ThreadPool* runtime,
                         const BatchItemObserver& observe) {
  BatchItem item;
  item.index = index;
  item.seed = config.base_seed + index;
  const auto t_begin = clock_type::now();
  const std::size_t max_attempts = 1 + config.max_retries;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++item.attempts;
    // One budget per attempt: a fresh deadline per retry (a timed-out
    // attempt would otherwise make every retry trip instantly), the
    // shared batch cancel token, and the caller's step/path limits.
    RunBudget budget;
    budget.token = config.cancel;
    if (config.deadline_ms > 0.0) {
      budget.set_deadline_after(config.deadline_ms);
    }
    if (config.synthesis.budget != nullptr) {
      budget.max_steps = config.synthesis.budget->max_steps;
      budget.max_paths = config.synthesis.budget->max_paths;
    }
    const bool own_budget = config.cancel != nullptr ||
                            config.deadline_ms > 0.0 ||
                            config.synthesis.budget != nullptr;
    try {
      // Fail fast on a cancelled batch: not-yet-started items report
      // kCancelled without generating their graphs.
      if (config.cancel != nullptr && config.cancel->cancelled()) {
        throw CancelledError("batch cancelled");
      }
      CPS_FAULT_POINT("batch.item");
      Rng rng(item.seed);
      const Architecture arch = generate_random_architecture(rng, config.arch);
      const Cpg g = generate_random_cpg(arch, config.cpg, rng);

      // Every item co-synthesizes on its own engine workspace: a workspace
      // is single-threaded and sharing one across pool workers would both
      // race and make the per-item reuse counters depend on scheduling
      // (breaking the byte-identical JSON guarantee). Inner parallelism —
      // subtree jobs and speculative merge adjustments — rides the shared
      // batch runtime via schedule_pool, with the trie decomposition pinned
      // to a fixed frontier so the split (and with it every per-item
      // counter) cannot depend on pool size. Items do not retain their path
      // vectors — thousand-graph batches would otherwise carry
      // O(paths × depth) dead weight apiece.
      CoSynthesisOptions synthesis = config.synthesis;
      synthesis.workspace = nullptr;
      synthesis.schedule_threads = 1;
      synthesis.schedule_pool = runtime;
      synthesis.keep_paths = false;
      synthesis.budget = own_budget ? &budget : nullptr;
      if (synthesis.subtree_frontier == 0) {
        synthesis.subtree_frontier = kBatchSubtreeFrontier;
      }
      const CoSynthesisResult result = schedule_cpg(g, synthesis);

      item.ok = true;
      item.code = result.status;  // kOk, or kPathBudgetExceeded (bounded)
      item.error.clear();
      item.coverage = result.coverage;
      item.total_leaves = result.total_leaves;
      item.processes = g.process_count();
      item.tasks = result.flat->task_count();
      item.conditions = g.conditions().size();
      item.paths = result.path_count;
      item.table_entries = result.table.entry_count();
      item.delta_m = result.delays.delta_m;
      item.delta_max = result.delays.delta_max;
      item.increase_percent = result.delays.increase_percent;
      item.merge = result.merge_stats;
      item.cover_cache = result.cover_cache;
      item.workspace = result.workspace;
      item.tree = result.tree;
      item.expand_ms = result.timings.expand_ms;
      item.enumerate_ms = result.timings.enumerate_ms;
      item.schedule_ms = result.timings.schedule_ms;
      item.merge_ms = result.timings.merge_ms;
      item.validate_ms = result.timings.validate_ms;
      // While `g`/`arch` are alive: the result's FlatGraph points at them.
      if (observe) observe(result);
      break;
    } catch (const InjectedFault& e) {
      item.ok = false;
      item.code = ErrorCode::kInjectedFault;
      item.error = e.what();
      if (e.transient() && attempt + 1 < max_attempts) {
        const std::uint64_t backoff = retry_backoff_ms(item.seed, attempt);
        item.backoff_ms += backoff;
        ++item.retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        continue;
      }
      break;
    } catch (const Error& e) {
      item.ok = false;
      item.code = e.code();
      item.error = e.what();
      break;
    } catch (const std::exception& e) {
      item.ok = false;
      item.code = ErrorCode::kInternal;
      item.error = e.what();
      break;
    }
  }
  item.total_ms = ms_between(t_begin, clock_type::now());
  return item;
}

BatchResult run_batch(const BatchConfig& config) {
  BatchResult result;
  result.config = config;
  result.items.resize(config.count);

  std::size_t threads = ThreadPool::resolve_threads(config.threads);
  threads = std::min(threads, std::max<std::size_t>(config.count, 1));

  const auto t_begin = clock_type::now();
  if (config.count > 0) {
    if (threads <= 1) {
      // Serial reference: no pool at all. Items still run the same fixed
      // trie decomposition, just inline — so the results (and the JSON,
      // minus timing) match the pooled run byte for byte.
      for (std::size_t i = 0; i < config.count; ++i) {
        result.items[i] = run_batch_item(config, i, nullptr);
      }
    } else {
      // One runtime for everything. Whole items are kLow so the stealable
      // backlog of graphs never starves inner work: an item's subtree
      // jobs (kNormal) and speculative merge adjustments (kHigh) always
      // jump the queue, and idle workers fall back to stealing the next
      // graph. The calling thread participates in parallel_for, so the
      // pool only needs threads - 1 workers to reach the requested
      // parallelism.
      ThreadPool pool(threads - 1);
      pool.parallel_for(
          config.count,
          [&](std::size_t i) {
            result.items[i] = run_batch_item(config, i, &pool);
          },
          TaskPriority::kLow);
      // Drain before snapshotting: parallel_for joined the items, but
      // only an idle pool guarantees submitted == executed (+ cancelled)
      // with pending == 0 — the balanced snapshot the JSON reports.
      pool.wait_idle();
      result.summary.pool = pool.stats();
    }
  }
  result.summary.wall_ms = ms_between(t_begin, clock_type::now());

  for (const BatchItem& item : result.items) {
    add_item_stats(result.summary, item);
  }
  if (result.summary.wall_ms > 0.0) {
    result.summary.graphs_per_second =
        1000.0 * static_cast<double>(result.summary.ok_count) /
        result.summary.wall_ms;
  }
  return result;
}

std::string batch_result_to_json(const BatchResult& result,
                                 const BatchJsonOptions& options) {
  const BatchSummary& s = result.summary;
  JsonWriter w(options.indent);
  w.begin_object();

  w.key("config").begin_object();
  w.field("count", result.config.count);
  w.field("base_seed", result.config.base_seed);
  w.field("processes", result.config.cpg.process_count);
  w.field("paths", result.config.cpg.path_count);
  w.field("distribution", to_string(result.config.cpg.distribution));
  w.field("ready_selection", to_string(result.config.synthesis.merge.ready));
  w.field("path_scheduling",
          to_string(result.config.synthesis.path_scheduling));
  w.field("path_selection",
          to_string(result.config.synthesis.merge.selection));
  w.field("merge_execution",
          to_string(result.config.synthesis.merge.execution));
  w.field("validate", result.config.synthesis.validate);
  w.end_object();

  w.key("summary").begin_object();
  w.field("count", s.count);
  w.field("ok", s.ok_count);
  w.field("timeouts", s.timeouts);
  w.field("cancelled", s.cancelled);
  w.field("retries", s.retries);
  write_stat(w, "delta_m", s.delta_m);
  write_stat(w, "delta_max", s.delta_max);
  write_stat(w, "increase_percent", s.increase_percent);
  write_stat(w, "tasks", s.tasks);
  write_stat(w, "paths", s.paths);
  write_stat(w, "table_entries", s.table_entries);
  if (options.include_timing) {
    w.field("wall_ms", s.wall_ms);
    w.field("graphs_per_second", s.graphs_per_second);
    w.key("stage_ms").begin_object();
    write_stat(w, "expand", s.expand_ms);
    write_stat(w, "enumerate", s.enumerate_ms);
    write_stat(w, "schedule", s.schedule_ms);
    write_stat(w, "merge", s.merge_ms);
    write_stat(w, "validate", s.validate_ms);
    write_stat(w, "total", s.total_ms);
    w.end_object();
    // Work-stealing runtime counters ride the include_timing gate: like
    // wall_ms they are a legitimate race (who stole what when), so they
    // must stay out of byte-identical golden output.
    w.key("runtime").begin_object();
    w.field("submitted", s.pool.submitted);
    w.field("executed", s.pool.executed);
    w.field("local_hits", s.pool.local_hits);
    w.field("steals", s.pool.steals);
    w.field("injected", s.pool.injected);
    w.field("help_runs", s.pool.help_runs);
    w.field("max_help_depth", s.pool.max_help_depth);
    w.field("pending", s.pool.pending);
    w.field("cancelled_tasks", s.pool.cancelled_tasks);
    w.field("dropped_errors", s.pool.dropped_errors);
    w.end_object();
  }
  w.end_object();

  if (options.include_items) {
    w.key("items").begin_array();
    for (const BatchItem& item : result.items) {
      write_batch_item_json(w, item, options);
    }
    w.end_array();
  }

  w.end_object();
  return w.str() + "\n";
}

}  // namespace cps
