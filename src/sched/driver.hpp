// End-to-end driver: everything from a validated CPG to a validated
// schedule table and its delay report. This is the API most users (and
// all examples/benchmarks) call.
#pragma once

#include <memory>

#include "sched/delay.hpp"
#include "sched/merge.hpp"
#include "sched/schedule_cache.hpp"
#include "sched/table_validate.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"

namespace cps {

class WorkspacePool;

/// What a max_paths / RunBudget::max_paths trip does.
///
/// kThrow (default, historical behavior): the flow throws
/// BudgetExceededError(kPathBudgetExceeded) as soon as the budget is
/// crossed, before an exponential path set is materialized.
///
/// kBound (graceful degradation): the flow schedules, merges and
/// validates the first max_paths alternative paths — a deterministic
/// prefix of the enumeration order — and returns a *bounded-coverage*
/// result: CoSynthesisResult::status is kPathBudgetExceeded and
/// `coverage` carries the covered-leaves fraction. The table is coherent
/// for every covered path; uncovered label combinations simply have no
/// entries.
enum class BudgetAction : std::uint8_t { kThrow, kBound };

/// How the per-path scheduling stage walks the alternative-path set.
///
/// kTree (production) schedules the *guard trie* (cpg/paths PathTree):
/// leaves are visited in the same depth-first order as the path list, but
/// each leaf's engine run resumes from a checkpoint of the previous
/// leaf's run at their shared guard prefix (EngineHistory, generalized
/// from lock-set to guard-assignment divergence), and independent
/// subtrees can be dispatched to thread-pool workers. Schedules, the
/// merged table and batch JSON are byte-identical to kList at every
/// thread count.
///
/// kList is the retained streaming path-list reference: one from-scratch
/// engine run per path, serially, in enumeration order.
enum class PathScheduling : std::uint8_t { kList, kTree };

const char* to_string(PathScheduling s);

/// Counters of the guard-trie scheduling stage. With a fixed subtree
/// decomposition (CoSynthesisOptions::subtree_frontier != 0, the batch
/// driver's setting) every counter is a pure function of the trie —
/// byte-identical at any pool size, including none. With the adaptive
/// split (subtree_frontier == 0) the decomposition is a function of the
/// resolved thread count, so the counters are deterministic *per thread
/// count* (the schedules never vary either way). Zero in kList mode.
struct PathTreeStats {
  /// Leaf engine runs resumed from a shared-prefix checkpoint.
  std::size_t prefix_resumes = 0;
  /// Committed time steps those resumes skipped (vs from-scratch).
  std::size_t resumed_steps = 0;
  /// Subtree jobs the decomposed walk committed (0 = serial chain walk).
  /// They ran on pool workers when a pool was available, inline
  /// otherwise — the count is the same either way.
  std::size_t subtrees_parallel = 0;

  PathTreeStats& operator+=(const PathTreeStats& o) {
    prefix_resumes += o.prefix_resumes;
    resumed_steps += o.resumed_steps;
    subtrees_parallel += o.subtrees_parallel;
    return *this;
  }
};

struct CoSynthesisOptions {
  PriorityPolicy path_priority = PriorityPolicy::kCriticalPath;
  /// merge.ready selects the engine for the *whole* flow: both per-path
  /// scheduling and the merge adjustments use it, so one knob switches
  /// between the heap engine and the linear-scan reference.
  MergeOptions merge;
  /// Validate the table (requirements 1-4) after merging; on violation a
  /// ValidationError is thrown. Turn off only in benchmarks that measure
  /// merge time in isolation.
  bool validate = true;
  /// Alternative-path budget. Paths are enumerated *streamingly* and
  /// scheduled as they appear; when a graph has more than this many
  /// paths the budget trips as soon as it is crossed, instead of first
  /// materializing (and scheduling) an exponential path set. What a trip
  /// does is `on_budget`'s call (throw, or bound coverage). 0 =
  /// unlimited. RunBudget::max_paths (when `budget` is set) folds in:
  /// the smaller nonzero value wins.
  std::size_t max_paths = 0;
  /// Behavior on a path-budget trip (see BudgetAction).
  BudgetAction on_budget = BudgetAction::kThrow;
  /// Optional cooperative cancellation/deadline/step/path budget
  /// (non-owning; must outlive the call). Polled at bounded intervals by
  /// every layer: the engine main loop per step, the merge walk per
  /// decision-tree node, trie subtree jobs per leaf, and the driver
  /// between paths. A trip throws the matching typed error
  /// (CancelledError, DeadlineExceededError, BudgetExceededError);
  /// workspaces and histories stay reusable and a subsequent clean run
  /// is byte-identical to a never-interrupted one.
  RunBudget* budget = nullptr;
  /// Optional externally owned engine workspace for the per-path
  /// scheduling loop: callers that co-synthesize repeatedly on one thread
  /// (benches, custom harnesses) can pay the buffer allocations once
  /// across calls. Must outlive the call and must not be used
  /// concurrently. Serial walks only (the decomposed tree walk owns one
  /// private workspace per subtree job instead). nullptr = the flow owns
  /// a workspace per call (still reused across all paths of that call).
  EngineWorkspace* workspace = nullptr;
  /// Optional thread-safe pool of warm engine workspaces (non-owning;
  /// must outlive the call). Covers what `workspace` cannot: the
  /// decomposed tree walk runs one private workspace *per subtree job*,
  /// and a single external workspace is not legal across concurrent
  /// jobs. With a pool, every job (and the serial walk, when `workspace`
  /// is unset) leases a workspace instead of constructing one, so
  /// repeated calls — a service session, a batch rerun — stop re-paying
  /// the engine-buffer allocations. Results are byte-identical with or
  /// without a pool; only WorkspaceStats reuse counters reflect the warm
  /// start (see workspace_pool.hpp). Ignored when `workspace` is set
  /// (serial walks honor the explicit workspace first).
  WorkspacePool* workspace_pool = nullptr;
  /// Optional cross-request schedule cache (non-owning, thread-safe; must
  /// outlive the call). The *driver* uses only its prefix tier: tree-mode
  /// walks seed their resume chains from the history a previous
  /// co-synthesis of the same graph donated, and donate their own chains
  /// back on success — so repeated graphs resume from the deepest shared
  /// guard-prefix checkpoint instead of scheduling from t=0. (The exact
  /// tier — whole recorded results — lives one layer up, in the batch
  /// driver, which alone knows the full request key.) Results are
  /// byte-identical with or without a cache; only resume-class counters
  /// (tree, workspace, cover_cache, cache) reflect the seeding — see
  /// BatchJsonOptions::include_resume_counters. Ignored under
  /// PriorityPolicy::kRandom (per-path priority draws consume the flow
  /// RNG, which a cross-call history cannot replay).
  ScheduleCache* schedule_cache = nullptr;
  /// Per-path scheduling strategy (see PathScheduling). Tree mode is the
  /// production default; the path-list reference is retained for
  /// equivalence tests and ablation.
  PathScheduling path_scheduling = PathScheduling::kTree;
  /// Worker threads for tree-mode subtree dispatch; 1 = serial tree walk
  /// (one resume chain over all leaves — the most prefix reuse), 0 =
  /// hardware concurrency. Ignored by kList. PriorityPolicy::kRandom
  /// forces the serial walk (the per-path priority draws are part of the
  /// reproducible serial order). The schedules are byte-identical at
  /// every value.
  std::size_t schedule_threads = 1;
  /// Optional externally owned pool — the unified work-stealing runtime —
  /// for tree-mode subtree dispatch AND (unless merge.pool/merge.threads
  /// say otherwise) the merge's speculative workers: one pool serves
  /// every nesting level, so a batch of tree-scheduled items saturates
  /// the machine instead of oversubscribing it. When set it replaces
  /// `schedule_threads` for sizing — the parallelism is the pool's
  /// workers plus the participating calling thread. Must outlive the
  /// call. nullptr = the flow spawns workers per call when the resolved
  /// `schedule_threads` exceeds 1.
  ThreadPool* schedule_pool = nullptr;
  /// Subtree decomposition target of the tree walk. 0 (default) adapts
  /// the split to the resolved parallelism (4 subtree jobs per thread;
  /// serial walks keep the single resume chain — the most prefix reuse).
  /// A non-zero value carves the trie into at least this many DFS-ordered
  /// subtree jobs *regardless of pool size* — even with no pool at all —
  /// making every per-call counter (PathTreeStats, workspace,
  /// cover_cache) a pure function of the graph. The batch driver sets
  /// this so batch JSON stays byte-identical across thread counts while
  /// inner subtree jobs still ride the shared runtime.
  std::size_t subtree_frontier = 0;
  /// Materialize `CoSynthesisResult::paths` / `path_schedules`. They are
  /// always *built* (the merge consumes them) but with keep_paths off the
  /// result drops them before returning — thousand-graph batches stop
  /// carrying O(paths × depth) dead weight per item. `path_count` is
  /// filled either way.
  bool keep_paths = true;
};

/// Wall-clock cost of each pipeline stage (milliseconds).
struct StageTimings {
  double expand_ms = 0.0;
  double enumerate_ms = 0.0;
  double schedule_ms = 0.0;
  double merge_ms = 0.0;
  double validate_ms = 0.0;
};

/// Everything the flow produces. The FlatGraph is heap-allocated so the
/// ScheduleTable's reference to it stays valid when the result is moved.
struct CoSynthesisResult {
  std::unique_ptr<FlatGraph> flat;
  /// Alternative paths and their optimal schedules, in enumeration order.
  /// Empty when CoSynthesisOptions::keep_paths is off (see `path_count`).
  std::vector<AltPath> paths;
  std::vector<PathSchedule> path_schedules;
  /// Number of alternative paths scheduled (valid even when the vectors
  /// above were dropped via keep_paths).
  std::size_t path_count = 0;
  ScheduleTable table;
  MergeStats merge_stats;
  /// Counters of the per-path scheduling cover cache (guard coverage
  /// memoization). A pure function of the input graph and options for
  /// serial walks; the decomposed tree walk uses one private cache per
  /// subtree job, aggregated in job order, so the counters are a pure
  /// function of the decomposition (see PathTreeStats).
  CoverCacheStats cover_cache;
  /// Engine-workspace counters of the per-path scheduling loop (buffer
  /// reuse across the paths of this call). Deterministic for serial walks
  /// (kList, or kTree with one resume chain); counts only this call's
  /// runs even on a shared external workspace. The decomposed tree walk
  /// owns one private workspace per subtree job, so these counters too
  /// are a pure function of the decomposition — no dependence on which
  /// worker ran which job.
  WorkspaceStats workspace;
  /// Aggregated engine-workspace counters of the merge (walking thread +
  /// speculative workers): checkpoint resumes, full reuses, resumed
  /// steps. Timing-dependent under speculative execution (see
  /// MergeResult::workspace), hence kept out of byte-identical outputs.
  WorkspaceStats merge_workspace;
  /// Guard-trie scheduling counters (see PathTreeStats for the
  /// determinism contract). Zero under PathScheduling::kList.
  PathTreeStats tree;
  /// Work-stealing runtime counters accumulated over this call (zero
  /// when no pool participated). Timing-dependent — which worker popped
  /// which task is a legitimate race — and, on a shared runtime,
  /// polluted by concurrent callers; informational only, never part of
  /// byte-identical outputs.
  PoolStats pool;
  /// Schedule-cache counters of *this call* (prefix-tier lookups the
  /// walks performed; zero when no cache was passed). Deterministic per
  /// (graph, options, cache state) but dependent on what earlier requests
  /// left in the shared cache — the same class of counter as `workspace`
  /// under a shared pool.
  ScheduleCacheStats cache;
  DelayReport delays;
  StageTimings timings;
  /// kOk for a complete result; kPathBudgetExceeded for a successful
  /// *bounded-coverage* result (BudgetAction::kBound — the table covers
  /// only the first max_paths leaves). Failures throw, so no other code
  /// appears here.
  ErrorCode status = ErrorCode::kOk;
  /// Total alternative-path (leaf) count of the graph. Equals path_count
  /// for complete results. For bounded-coverage results it is probed
  /// with a capped enumeration; 0 = unknown (the probe cap was also
  /// exceeded).
  std::size_t total_leaves = 0;
  /// path_count / total_leaves: the covered-leaves fraction. 1.0 for
  /// complete results, 0.0 when total_leaves is unknown.
  double coverage = 1.0;

  const FlatGraph& flat_graph() const { return *flat; }
};

/// Run the full flow of the paper: expand, enumerate alternative paths,
/// schedule each path, merge into a schedule table, validate, and measure
/// δ_M / δ_max. The Cpg must outlive the result (the FlatGraph holds a
/// reference to it).
CoSynthesisResult schedule_cpg(const Cpg& g,
                               const CoSynthesisOptions& options = {});

/// Effective alternative-path budget: options.max_paths folded with
/// RunBudget::max_paths (smaller nonzero value wins; 0 = unlimited).
/// Exposed because it is part of a request's *result identity* — the
/// batch driver folds it into schedule-cache keys.
std::size_t effective_max_paths(const CoSynthesisOptions& options);

}  // namespace cps
