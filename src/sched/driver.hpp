// End-to-end driver: everything from a validated CPG to a validated
// schedule table and its delay report. This is the API most users (and
// all examples/benchmarks) call.
#pragma once

#include <memory>

#include "sched/delay.hpp"
#include "sched/merge.hpp"
#include "sched/table_validate.hpp"

namespace cps {

struct CoSynthesisOptions {
  PriorityPolicy path_priority = PriorityPolicy::kCriticalPath;
  /// merge.ready selects the engine for the *whole* flow: both per-path
  /// scheduling and the merge adjustments use it, so one knob switches
  /// between the heap engine and the linear-scan reference.
  MergeOptions merge;
  /// Validate the table (requirements 1-4) after merging; on violation a
  /// ValidationError is thrown. Turn off only in benchmarks that measure
  /// merge time in isolation.
  bool validate = true;
  /// Alternative-path budget. Paths are enumerated *streamingly* and
  /// scheduled as they appear; when a graph has more than this many
  /// paths the flow throws InvalidArgument as soon as the budget is
  /// crossed, instead of first materializing (and scheduling) an
  /// exponential path set. 0 = unlimited.
  std::size_t max_paths = 0;
  /// Optional externally owned engine workspace for the per-path
  /// scheduling loop: callers that co-synthesize repeatedly on one thread
  /// (benches, custom harnesses) can pay the buffer allocations once
  /// across calls. Must outlive the call and must not be used
  /// concurrently. nullptr = the flow owns a workspace per call (still
  /// reused across all paths of that call).
  EngineWorkspace* workspace = nullptr;
};

/// Wall-clock cost of each pipeline stage (milliseconds).
struct StageTimings {
  double expand_ms = 0.0;
  double enumerate_ms = 0.0;
  double schedule_ms = 0.0;
  double merge_ms = 0.0;
  double validate_ms = 0.0;
};

/// Everything the flow produces. The FlatGraph is heap-allocated so the
/// ScheduleTable's reference to it stays valid when the result is moved.
struct CoSynthesisResult {
  std::unique_ptr<FlatGraph> flat;
  std::vector<AltPath> paths;
  std::vector<PathSchedule> path_schedules;
  ScheduleTable table;
  MergeStats merge_stats;
  /// Counters of the per-path scheduling cover cache (guard coverage
  /// memoization). Deterministic: the per-path loop is serial, so the
  /// counters are a pure function of the input graph and options.
  CoverCacheStats cover_cache;
  /// Engine-workspace counters of the per-path scheduling loop (buffer
  /// reuse across the paths of this call). Deterministic, like
  /// `cover_cache`; counts only this call's runs even on a shared
  /// external workspace.
  WorkspaceStats workspace;
  /// Aggregated engine-workspace counters of the merge (walking thread +
  /// speculative workers): checkpoint resumes, full reuses, resumed
  /// steps. Timing-dependent under speculative execution (see
  /// MergeResult::workspace), hence kept out of byte-identical outputs.
  WorkspaceStats merge_workspace;
  DelayReport delays;
  StageTimings timings;

  const FlatGraph& flat_graph() const { return *flat; }
};

/// Run the full flow of the paper: expand, enumerate alternative paths,
/// schedule each path, merge into a schedule table, validate, and measure
/// δ_M / δ_max. The Cpg must outlive the result (the FlatGraph holds a
/// reference to it).
CoSynthesisResult schedule_cpg(const Cpg& g,
                               const CoSynthesisOptions& options = {});

}  // namespace cps
