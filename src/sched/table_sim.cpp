#include "sched/table_sim.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace cps {

namespace {
constexpr Time kInf = std::numeric_limits<Time>::max();
}

TableExecution execute_table(const FlatGraph& fg, const ScheduleTable& table,
                             const AltPath& path) {
  TableExecution out;
  out.schedule = PathSchedule(fg.task_count());
  const std::vector<bool> active = fg.active_tasks(path.label);

  auto complain = [&out](const std::string& msg) {
    out.violations.push_back(msg);
  };

  // 1. Extract starts from the table. Extraction must stay total even on
  //    deliberately incoherent tables (the validator reports through us),
  //    so ambiguity is a violation, not an assertion.
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    if (!active[t]) {
      continue;
    }
    const auto entries = table.matching(t, path.label);
    if (entries.empty()) {
      complain("task " + fg.task(t).name + " active on path " +
               path.label.to_string() + " but has no activation (req. 3)");
      continue;
    }
    for (const TableEntry& e : entries) {
      if (e.start != entries.front().start ||
          e.resource != entries.front().resource) {
        complain("task " + fg.task(t).name +
                 " has ambiguous activations on path " +
                 path.label.to_string() + " (req. 2)");
        break;
      }
    }
    const TableEntry& entry = entries.front();
    out.schedule.place(t, entry.start, entry.start + fg.task(t).duration,
                       entry.resource);
  }

  // 2. Dependencies.
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    if (!active[t] || !out.schedule.scheduled(t)) continue;
    for (EdgeId e : fg.deps().in_edges(t)) {
      const TaskId pred = fg.deps().edge(e).src;
      if (!active[pred] || !out.schedule.scheduled(pred)) continue;
      if (out.schedule.slot(pred).end > out.schedule.slot(t).start) {
        std::ostringstream os;
        os << "task " << fg.task(t).name << " starts at "
           << out.schedule.slot(t).start << " before predecessor "
           << fg.task(pred).name << " ends at "
           << out.schedule.slot(pred).end;
        complain(os.str());
      }
    }
  }

  // 3. Mutual exclusion on sequential resources.
  std::vector<TaskId> scheduled;
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    if (active[t] && out.schedule.scheduled(t)) scheduled.push_back(t);
  }
  for (std::size_t i = 0; i < scheduled.size(); ++i) {
    for (std::size_t j = i + 1; j < scheduled.size(); ++j) {
      const Slot& a = out.schedule.slot(scheduled[i]);
      const Slot& b = out.schedule.slot(scheduled[j]);
      if (a.resource != b.resource) continue;
      if (!fg.arch().pe(a.resource).sequential()) continue;
      if (a.start < b.end && b.start < a.end) {
        complain("tasks " + fg.task(scheduled[i]).name + " and " +
                 fg.task(scheduled[j]).name + " overlap on " +
                 fg.arch().pe(a.resource).name);
      }
    }
  }

  // 4. Knowledge: reconstruct when each condition becomes known on each
  //    resource and check every activation column against it.
  std::vector<std::vector<Time>> known(
      fg.arch().pe_count(),
      std::vector<Time>(fg.cpg().conditions().size(), kInf));
  for (const Literal& lit : path.label.literals()) {
    const TaskId disj = fg.disjunction_task(lit.cond);
    if (!out.schedule.scheduled(disj)) continue;
    const Slot& ds = out.schedule.slot(disj);
    if (fg.broadcasts_enabled()) {
      known[ds.resource][lit.cond] = ds.end;
      if (auto bcast = fg.broadcast_task(lit.cond);
          bcast && out.schedule.scheduled(*bcast)) {
        const Time be = out.schedule.slot(*bcast).end;
        for (PeId r = 0; r < fg.arch().pe_count(); ++r) {
          known[r][lit.cond] = std::min(known[r][lit.cond], be);
        }
      }
    } else {
      for (PeId r = 0; r < fg.arch().pe_count(); ++r) {
        known[r][lit.cond] = ds.end;
      }
    }
  }
  for (TaskId t : scheduled) {
    const auto entries = table.matching(t, path.label);
    CPS_ASSERT(!entries.empty(), "scheduled task lost its activation");
    const TableEntry* entry = &entries.front();
    for (const Literal& lit : entry->column.literals()) {
      const Time kt = known[entry->resource][lit.cond];
      if (kt > entry->start) {
        std::ostringstream os;
        os << "activation of " << fg.task(t).name << " at " << entry->start
           << " uses condition " << fg.cpg().conditions().name(lit.cond)
           << " not yet known on " << fg.arch().pe(entry->resource).name
           << " (known at " << kt << ", req. 4)";
        complain(os.str());
      }
    }
    // The decision must be sufficient: column must imply the guard.
    if (!fg.task(t).guard.covered_by_context(entry->column)) {
      complain("column " + entry->column.to_string() +
               " does not imply the guard of " + fg.task(t).name +
               " (req. 1)");
    }
  }

  out.ok = out.violations.empty();
  if (out.schedule.scheduled(fg.sink_task())) {
    out.delay = out.schedule.slot(fg.sink_task()).end;
  } else {
    complain("sink task was never activated");
    out.ok = false;
  }
  return out;
}

}  // namespace cps
