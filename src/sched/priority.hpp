// List-scheduling priority policies (companion report [5] uses a critical-
// path driven list scheduler; the alternatives exist for the ablation
// benchmark bench_ablation_priority).
#pragma once

#include <cstdint>
#include <vector>

#include "cpg/flat_graph.hpp"
#include "support/random.hpp"

namespace cps {

enum class PriorityPolicy : std::uint8_t {
  kCriticalPath,  ///< longest path to the sink through active tasks
  kTaskOrder,     ///< static order by task id (an "uninformed" baseline)
  kRandom,        ///< random static priorities (ablation lower bound)
};

const char* to_string(PriorityPolicy p);

/// Priority per task (higher = scheduled first); tasks outside `active`
/// get priority 0 and are never consulted.
std::vector<std::int64_t> compute_priorities(const FlatGraph& fg,
                                             const std::vector<bool>& active,
                                             PriorityPolicy policy,
                                             Rng* rng = nullptr);

}  // namespace cps
