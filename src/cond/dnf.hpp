// Dnf: a disjunction of cubes (sum of products) over condition literals.
//
// Guards of conjunction processes are genuine disjunctions (paper §2: the
// guard of a conjunction node is the OR over its alternative input paths,
// e.g. X_P17 = (D&K) | (D&!K) | !D = true), so a cube is not enough.
// The class keeps a modest normal form: contradictions dropped, subsumed
// cubes absorbed, complementary pairs merged (X&C | X&!C -> X).
//
// Guards mention a handful of conditions, so the cube list lives in
// small-buffer storage (no heap allocation up to kInlineCubes cubes) and
// the normalization passes run on the cubes' packed masks.
#pragma once

#include <string>
#include <vector>

#include "cond/cube.hpp"
#include "support/small_vector.hpp"

namespace cps {

class Dnf {
 public:
  /// Cubes stored inline before the list spills to the heap.
  static constexpr std::size_t kInlineCubes = 2;
  using CubeList = SmallVector<Cube, kInlineCubes>;

  /// Constant false (empty disjunction).
  Dnf() = default;

  /// Single-cube DNF.
  explicit Dnf(const Cube& cube) { cubes_.push_back(cube); }

  static Dnf constant(bool value) {
    return value ? Dnf(Cube::top()) : Dnf();
  }
  static Dnf true_() { return constant(true); }
  static Dnf false_() { return constant(false); }

  bool is_false() const { return cubes_.empty(); }
  /// Syntactic check: true iff the normal form is exactly the top cube.
  /// (tautology() performs the semantic check.)
  bool is_true() const {
    return cubes_.size() == 1 && cubes_.front().is_true();
  }

  const CubeList& cubes() const { return cubes_; }

  /// Disjunction with a cube / another DNF (normalizing).
  Dnf or_cube(const Cube& cube) const;
  Dnf or_dnf(const Dnf& other) const;

  /// Conjunction with a cube / another DNF (cube-wise product, normalized).
  Dnf and_cube(const Cube& cube) const;
  Dnf and_literal(Literal l) const { return and_cube(Cube(l)); }
  Dnf and_dnf(const Dnf& other) const;

  /// Evaluate under a complete description of the mentioned conditions:
  /// `value(cond)` must return the polarity of every condition this DNF
  /// mentions.
  bool evaluate(const std::function<bool(CondId)>& value) const;

  /// True iff every assignment consistent with `context` satisfies this
  /// DNF (i.e. context implies the DNF). Implemented by Shannon expansion;
  /// exact, not an approximation.
  bool covered_by_context(const Cube& context) const;

  /// Semantic tautology test: covered by the empty context.
  bool tautology() const { return covered_by_context(Cube::top()); }

  /// True iff this DNF implies `other` for every assignment.
  bool implies(const Dnf& other) const;

  /// Semantic equivalence.
  bool equivalent(const Dnf& other) const {
    return implies(other) && other.implies(*this);
  }

  /// All condition ids mentioned by any cube (sorted, unique).
  std::vector<CondId> mentioned_conditions() const;

  std::string to_string(
      const std::function<std::string(CondId)>& name) const;
  std::string to_string() const;

  friend bool operator==(const Dnf& a, const Dnf& b) {
    return a.cubes_ == b.cubes_;
  }
  friend bool operator!=(const Dnf& a, const Dnf& b) { return !(a == b); }

 private:
  void normalize();

  CubeList cubes_;  // sorted, pairwise non-subsuming
};

}  // namespace cps
