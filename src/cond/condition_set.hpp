// ConditionSet: the named universe of conditions of one model.
#pragma once

#include <string>
#include <vector>

#include "cond/cube.hpp"
#include "cond/dnf.hpp"

namespace cps {

/// Registry of condition names; owns the CondId space of a model.
class ConditionSet {
 public:
  /// Register a new condition; names must be unique and non-empty.
  CondId add(const std::string& name);

  std::size_t size() const { return names_.size(); }
  const std::string& name(CondId id) const;

  /// Lookup by name; throws InvalidArgument if absent.
  CondId id_of(const std::string& name) const;
  bool contains(const std::string& name) const;

  /// Pretty-print helpers bound to this name table.
  std::string render(const Cube& cube) const;
  std::string render(const Dnf& dnf) const;
  std::string render(Literal l) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace cps
