// Assignment: a complete valuation of a condition universe.
//
// Alternative paths are identified by the cube of conditions actually
// *encountered* on the path (the label L_k); an Assignment extends such a
// cube to every condition of the model, which is what the run-time
// simulator needs to execute a table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cond/cube.hpp"

namespace cps {

class Assignment {
 public:
  Assignment() = default;

  /// All-false assignment over `universe_size` conditions.
  explicit Assignment(std::size_t universe_size)
      : values_(universe_size, false) {}

  /// Extend a cube with `false` for unmentioned conditions.
  static Assignment from_cube(const Cube& cube, std::size_t universe_size);

  /// Enumerate all 2^n assignments over the universe (n must be <= 20).
  static std::vector<Assignment> enumerate(std::size_t universe_size);

  std::size_t universe_size() const { return values_.size(); }

  bool value(CondId cond) const;
  void set(CondId cond, bool v);

  bool satisfies(Literal l) const { return value(l.cond) == l.value; }
  bool satisfies(const Cube& cube) const;

  /// Cube fixing every condition of the universe to its value here.
  Cube to_cube() const;

  /// Render as bit string, index 0 first, e.g. "101".
  std::string to_string() const;

  friend bool operator==(const Assignment& a, const Assignment& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Assignment& a, const Assignment& b) {
    return !(a == b);
  }
  friend bool operator<(const Assignment& a, const Assignment& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<bool> values_;
};

}  // namespace cps
