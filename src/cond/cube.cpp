#include "cond/cube.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cps {

Cube::Cube(const std::vector<Literal>& lits) {
  lits_ = lits;
  std::sort(lits_.begin(), lits_.end());
  for (std::size_t i = 1; i < lits_.size(); ++i) {
    if (lits_[i - 1].cond == lits_[i].cond) {
      CPS_REQUIRE(lits_[i - 1].value == lits_[i].value,
                  "contradictory literals in cube constructor");
    }
  }
  lits_.erase(std::unique(lits_.begin(), lits_.end()), lits_.end());
}

std::optional<bool> Cube::value_of(CondId cond) const {
  // Cubes are tiny (a handful of conditions); linear scan beats binary
  // search in practice and keeps the code obvious.
  for (const Literal& l : lits_) {
    if (l.cond == cond) return l.value;
    if (l.cond > cond) break;
  }
  return std::nullopt;
}

std::optional<Cube> Cube::conjoin(Literal l) const {
  if (auto v = value_of(l.cond)) {
    if (*v != l.value) return std::nullopt;
    return *this;
  }
  Cube out = *this;
  out.lits_.insert(
      std::upper_bound(out.lits_.begin(), out.lits_.end(), l), l);
  return out;
}

std::optional<Cube> Cube::conjoin(const Cube& other) const {
  Cube out = *this;
  for (const Literal& l : other.lits_) {
    auto next = out.conjoin(l);
    if (!next) return std::nullopt;
    out = std::move(*next);
  }
  return out;
}

bool Cube::compatible(const Cube& other) const {
  auto a = lits_.begin();
  auto b = other.lits_.begin();
  while (a != lits_.end() && b != other.lits_.end()) {
    if (a->cond == b->cond) {
      if (a->value != b->value) return false;
      ++a;
      ++b;
    } else if (a->cond < b->cond) {
      ++a;
    } else {
      ++b;
    }
  }
  return true;
}

bool Cube::implies(const Cube& other) const {
  return std::includes(lits_.begin(), lits_.end(), other.lits_.begin(),
                       other.lits_.end());
}

Cube Cube::without(CondId cond) const {
  Cube out;
  out.lits_.reserve(lits_.size());
  for (const Literal& l : lits_) {
    if (l.cond != cond) out.lits_.push_back(l);
  }
  return out;
}

bool Cube::conditions_subset_of(const Cube& other) const {
  for (const Literal& l : lits_) {
    if (!other.mentions(l.cond)) return false;
  }
  return true;
}

std::string Cube::to_string(
    const std::function<std::string(CondId)>& name) const {
  if (lits_.empty()) return "true";
  std::string out;
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    if (i > 0) out += " & ";
    if (!lits_[i].value) out += '!';
    out += name(lits_[i].cond);
  }
  return out;
}

std::string Cube::to_string() const {
  return to_string(
      [](CondId c) { return "c" + std::to_string(c); });
}

}  // namespace cps
