#include "cond/cube.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cps {

void Cube::set_unchecked(Literal l) {
  if (l.cond < kPackedBits) {
    (l.value ? pos_ : neg_) |= std::uint64_t{1} << l.cond;
  } else {
    wide_.insert(std::upper_bound(wide_.begin(), wide_.end(), l), l);
  }
}

Cube::Cube(const std::vector<Literal>& lits) {
  for (const Literal& l : lits) set_unchecked(l);
  CPS_REQUIRE((pos_ & neg_) == 0,
              "contradictory literals in cube constructor");
  if (!wide_.empty()) {
    wide_.erase(std::unique(wide_.begin(), wide_.end()), wide_.end());
    for (std::size_t i = 1; i < wide_.size(); ++i) {
      CPS_REQUIRE(wide_[i - 1].cond != wide_[i].cond,
                  "contradictory literals in cube constructor");
    }
  }
}

Cube Cube::from_masks(std::uint64_t pos, std::uint64_t neg) {
  CPS_ASSERT((pos & neg) == 0, "contradictory masks in Cube::from_masks");
  Cube out;
  out.pos_ = pos;
  out.neg_ = neg;
  return out;
}

std::vector<Literal> Cube::literals() const {
  std::vector<Literal> out;
  out.reserve(size());
  for_each([&out](Literal l) { out.push_back(l); });
  return out;
}

std::optional<bool> Cube::value_of(CondId cond) const {
  if (cond < kPackedBits) {
    const std::uint64_t bit = std::uint64_t{1} << cond;
    if (pos_ & bit) return true;
    if (neg_ & bit) return false;
    return std::nullopt;
  }
  const auto it = std::lower_bound(wide_.begin(), wide_.end(),
                                   Literal{cond, false});
  if (it != wide_.end() && it->cond == cond) return it->value;
  return std::nullopt;
}

std::optional<Cube> Cube::conjoin(Literal l) const {
  if (l.cond < kPackedBits) {
    const std::uint64_t bit = std::uint64_t{1} << l.cond;
    if ((l.value ? neg_ : pos_) & bit) return std::nullopt;
    Cube out = *this;
    (l.value ? out.pos_ : out.neg_) |= bit;
    return out;
  }
  if (auto v = value_of(l.cond)) {
    if (*v != l.value) return std::nullopt;
    return *this;
  }
  Cube out = *this;
  out.wide_.insert(
      std::upper_bound(out.wide_.begin(), out.wide_.end(), l), l);
  return out;
}

std::optional<Cube> Cube::conjoin(const Cube& other) const {
  if ((pos_ & other.neg_) != 0 || (neg_ & other.pos_) != 0) {
    return std::nullopt;
  }
  Cube out;
  out.pos_ = pos_ | other.pos_;
  out.neg_ = neg_ | other.neg_;
  if (wide_.empty()) {
    out.wide_ = other.wide_;
    return out;
  }
  if (other.wide_.empty()) {
    out.wide_ = wide_;
    return out;
  }
  // Sorted merge of the wide tails, rejecting opposite polarities.
  out.wide_.reserve(wide_.size() + other.wide_.size());
  auto a = wide_.begin();
  auto b = other.wide_.begin();
  while (a != wide_.end() && b != other.wide_.end()) {
    if (a->cond == b->cond) {
      if (a->value != b->value) return std::nullopt;
      out.wide_.push_back(*a);
      ++a;
      ++b;
    } else if (a->cond < b->cond) {
      out.wide_.push_back(*a++);
    } else {
      out.wide_.push_back(*b++);
    }
  }
  out.wide_.insert(out.wide_.end(), a, wide_.end());
  out.wide_.insert(out.wide_.end(), b, other.wide_.end());
  return out;
}

bool Cube::wide_compatible(const Cube& other) const {
  auto a = wide_.begin();
  auto b = other.wide_.begin();
  while (a != wide_.end() && b != other.wide_.end()) {
    if (a->cond == b->cond) {
      if (a->value != b->value) return false;
      ++a;
      ++b;
    } else if (a->cond < b->cond) {
      ++a;
    } else {
      ++b;
    }
  }
  return true;
}

bool Cube::wide_implies(const Cube& other) const {
  return std::includes(wide_.begin(), wide_.end(), other.wide_.begin(),
                       other.wide_.end());
}

Cube Cube::without(CondId cond) const {
  Cube out = *this;
  if (cond < kPackedBits) {
    const std::uint64_t bit = std::uint64_t{1} << cond;
    out.pos_ &= ~bit;
    out.neg_ &= ~bit;
    return out;
  }
  const auto it = std::lower_bound(out.wide_.begin(), out.wide_.end(),
                                   Literal{cond, false});
  if (it != out.wide_.end() && it->cond == cond) out.wide_.erase(it);
  return out;
}

bool Cube::conditions_subset_of(const Cube& other) const {
  if ((mention_bits() & ~other.mention_bits()) != 0) return false;
  for (const Literal& l : wide_) {
    if (!other.mentions(l.cond)) return false;
  }
  return true;
}

std::size_t Cube::hash() const {
  // FNV-1a over the packed words and the wide literals.
  std::size_t h = 1469598103934665603ull;
  const auto mix = [&h](std::size_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::size_t>(pos_));
  mix(static_cast<std::size_t>(neg_));
  for (const Literal& l : wide_) {
    mix((static_cast<std::size_t>(l.cond) << 1) | (l.value ? 1u : 0u));
  }
  return h;
}

bool operator<(const Cube& a, const Cube& b) {
  const std::uint64_t ma = a.pos_ | a.neg_;
  const std::uint64_t mb = b.pos_ | b.neg_;
  // Lowest condition where the packed literal streams diverge: mentioned
  // by only one cube, or mentioned by both with opposite polarity.
  const std::uint64_t diff = (ma ^ mb) | ((a.pos_ ^ b.pos_) & ma & mb);
  if (diff != 0) {
    const int c = __builtin_ctzll(diff);
    const bool a_has = ((ma >> c) & 1) != 0;
    const bool b_has = ((mb >> c) & 1) != 0;
    if (a_has && b_has) {
      // Same position, opposite polarity: false orders before true.
      return ((a.neg_ >> c) & 1) != 0;
    }
    // The prefixes below c are identical. The cube mentioning c continues
    // with (c, v); the other continues with a larger condition — or ends,
    // making it a proper prefix (and therefore the smaller cube).
    const std::uint64_t above = c == 63 ? 0 : (~std::uint64_t{0} << (c + 1));
    if (a_has) return ((mb & above) != 0) || !b.wide_.empty();
    return ((ma & above) == 0) && a.wide_.empty();
  }
  return a.wide_ < b.wide_;
}

std::string Cube::to_string(
    const std::function<std::string(CondId)>& name) const {
  if (is_true()) return "true";
  std::string out;
  bool first = true;
  for_each([&](Literal l) {
    if (!first) out += " & ";
    first = false;
    if (!l.value) out += '!';
    out += name(l.cond);
  });
  return out;
}

std::string Cube::to_string() const {
  return to_string(
      [](CondId c) { return "c" + std::to_string(c); });
}

}  // namespace cps
