#include "cond/assignment.hpp"

#include "support/error.hpp"

namespace cps {

Assignment Assignment::from_cube(const Cube& cube,
                                 std::size_t universe_size) {
  Assignment out(universe_size);
  cube.for_each([&](Literal l) {
    CPS_REQUIRE(l.cond < universe_size,
                "cube mentions condition outside the universe");
    out.values_[l.cond] = l.value;
  });
  return out;
}

std::vector<Assignment> Assignment::enumerate(std::size_t universe_size) {
  CPS_REQUIRE(universe_size <= 20,
              "refusing to enumerate more than 2^20 assignments");
  std::vector<Assignment> out;
  out.reserve(std::size_t{1} << universe_size);
  for (std::uint32_t bits = 0;
       bits < (std::uint32_t{1} << universe_size); ++bits) {
    Assignment a(universe_size);
    for (std::size_t i = 0; i < universe_size; ++i) {
      a.values_[i] = (bits >> i) & 1u;
    }
    out.push_back(std::move(a));
  }
  return out;
}

bool Assignment::value(CondId cond) const {
  CPS_REQUIRE(cond < values_.size(), "condition outside the universe");
  return values_[cond];
}

void Assignment::set(CondId cond, bool v) {
  CPS_REQUIRE(cond < values_.size(), "condition outside the universe");
  values_[cond] = v;
}

bool Assignment::satisfies(const Cube& cube) const {
  bool ok = true;
  cube.for_each([&](Literal l) {
    if (ok && !satisfies(l)) ok = false;
  });
  return ok;
}

Cube Assignment::to_cube() const {
  std::vector<Literal> lits;
  lits.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    lits.push_back(Literal{static_cast<CondId>(i), values_[i]});
  }
  return Cube(lits);
}

std::string Assignment::to_string() const {
  std::string out;
  out.reserve(values_.size());
  for (bool v : values_) out += v ? '1' : '0';
  return out;
}

}  // namespace cps
