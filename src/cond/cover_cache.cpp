#include "cond/cover_cache.hpp"

namespace cps {

std::size_t CoverCache::KeyHash::operator()(const Key& k) const {
  // Mix the guard's address into the context cube's packed hash.
  std::size_t h = k.context.hash();
  h ^= reinterpret_cast<std::size_t>(k.dnf);
  h *= 1099511628211ull;
  return h;
}

void CoverCache::evict_if_full() {
  if (size() < max_entries_) return;
  covered_.clear();
  disjoint_.clear();
  ++resets_;
}

bool CoverCache::covered(const Dnf& dnf, const Cube& context) {
  Key key{&dnf, context};
  if (const auto it = covered_.find(key); it != covered_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const bool result = dnf.covered_by_context(context);
  evict_if_full();
  covered_.emplace(std::move(key), result);
  return result;
}

bool CoverCache::disjoint(const Dnf& dnf, const Cube& context) {
  Key key{&dnf, context};
  if (const auto it = disjoint_.find(key); it != disjoint_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const bool result = dnf.and_cube(context).is_false();
  evict_if_full();
  disjoint_.emplace(std::move(key), result);
  return result;
}

void CoverCache::clear() {
  covered_.clear();
  disjoint_.clear();
  hits_ = 0;
  misses_ = 0;
  resets_ = 0;
}

}  // namespace cps
