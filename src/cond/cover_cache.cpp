#include "cond/cover_cache.hpp"

namespace cps {

std::size_t CoverCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the pointer and the context literals.
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](std::size_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(reinterpret_cast<std::size_t>(k.dnf));
  for (const Literal& l : k.context.literals()) {
    mix((static_cast<std::size_t>(l.cond) << 1) | (l.value ? 1u : 0u));
  }
  return h;
}

bool CoverCache::covered(const Dnf& dnf, const Cube& context) {
  const auto [it, inserted] = covered_.try_emplace(Key{&dnf, context}, false);
  if (inserted) {
    ++misses_;
    it->second = dnf.covered_by_context(context);
  } else {
    ++hits_;
  }
  return it->second;
}

bool CoverCache::disjoint(const Dnf& dnf, const Cube& context) {
  const auto [it, inserted] = disjoint_.try_emplace(Key{&dnf, context}, false);
  if (inserted) {
    ++misses_;
    it->second = dnf.and_cube(context).is_false();
  } else {
    ++hits_;
  }
  return it->second;
}

void CoverCache::clear() {
  covered_.clear();
  disjoint_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace cps
