#include "cond/dnf.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cps {

namespace {

// If a and b differ only in the polarity of exactly one condition, return
// the merged cube with that condition dropped (X&C | X&!C == X).
std::optional<Cube> merge_complementary(const Cube& a, const Cube& b) {
  if (a.narrow() && b.narrow()) {
    // Packed fast path: same mentioned conditions, polarities differing in
    // exactly one bit.
    if (a.mention_bits() != b.mention_bits()) return std::nullopt;
    const std::uint64_t flipped = a.pos_bits() ^ b.pos_bits();
    if (flipped == 0 || (flipped & (flipped - 1)) != 0) return std::nullopt;
    return a.without(static_cast<CondId>(__builtin_ctzll(flipped)));
  }
  const auto la = a.literals();
  const auto lb = b.literals();
  if (la.size() != lb.size()) return std::nullopt;
  std::optional<CondId> flipped;
  for (std::size_t i = 0; i < la.size(); ++i) {
    if (la[i].cond != lb[i].cond) return std::nullopt;
    if (la[i].value != lb[i].value) {
      if (flipped) return std::nullopt;
      flipped = la[i].cond;
    }
  }
  if (!flipped) return std::nullopt;  // identical cubes
  return a.without(*flipped);
}

}  // namespace

void Dnf::normalize() {
  // Iterate absorption + complementary merging to a fixed point. Cube
  // counts in this domain are small (guards mention a handful of
  // conditions), so the quadratic passes are cheap.
  bool changed = true;
  while (changed) {
    changed = false;
    std::sort(cubes_.begin(), cubes_.end());
    cubes_.erase(std::unique(cubes_.begin(), cubes_.end()), cubes_.end());
    // Absorption: drop any cube implied by (more specific than) another.
    for (std::size_t i = 0; i < cubes_.size() && !changed; ++i) {
      for (std::size_t j = 0; j < cubes_.size(); ++j) {
        if (i == j) continue;
        if (cubes_[i].implies(cubes_[j])) {
          cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          break;
        }
      }
    }
    if (changed) continue;
    // Complementary merge.
    for (std::size_t i = 0; i < cubes_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cubes_.size(); ++j) {
        if (auto merged = merge_complementary(cubes_[i], cubes_[j])) {
          cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(j));
          cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(i));
          cubes_.push_back(*merged);
          changed = true;
          break;
        }
      }
    }
  }
}

Dnf Dnf::or_cube(const Cube& cube) const {
  Dnf out = *this;
  out.cubes_.push_back(cube);
  out.normalize();
  return out;
}

Dnf Dnf::or_dnf(const Dnf& other) const {
  Dnf out = *this;
  out.cubes_.insert(out.cubes_.end(), other.cubes_.begin(),
                    other.cubes_.end());
  out.normalize();
  return out;
}

Dnf Dnf::and_cube(const Cube& cube) const {
  Dnf out;
  for (const Cube& c : cubes_) {
    if (auto product = c.conjoin(cube)) out.cubes_.push_back(*product);
  }
  out.normalize();
  return out;
}

Dnf Dnf::and_dnf(const Dnf& other) const {
  Dnf out;
  for (const Cube& a : cubes_) {
    for (const Cube& b : other.cubes_) {
      if (auto product = a.conjoin(b)) out.cubes_.push_back(*product);
    }
  }
  out.normalize();
  return out;
}

bool Dnf::evaluate(const std::function<bool(CondId)>& value) const {
  for (const Cube& c : cubes_) {
    bool sat = true;
    c.for_each([&](Literal l) {
      if (sat && value(l.cond) != l.value) sat = false;
    });
    if (sat) return true;
  }
  return false;
}

bool Dnf::covered_by_context(const Cube& context) const {
  // Restrict to the context: drop incompatible cubes; if a compatible cube
  // is fully satisfied by the context it covers everything.
  std::vector<const Cube*> live;
  for (const Cube& c : cubes_) {
    if (!c.compatible(context)) continue;
    if (context.implies(c)) return true;
    live.push_back(&c);
  }
  if (live.empty()) return false;
  // Shannon-expand on the first condition mentioned by a live cube but not
  // decided by the context.
  std::optional<CondId> pivot;
  for (const Cube* c : live) {
    const std::uint64_t undecided =
        c->mention_bits() & ~context.mention_bits();
    if (undecided != 0) {
      pivot = static_cast<CondId>(__builtin_ctzll(undecided));
      break;
    }
    c->for_each([&](Literal l) {
      if (!pivot && l.cond >= Cube::kPackedBits && !context.mentions(l.cond)) {
        pivot = l.cond;
      }
    });
    if (pivot) break;
  }
  CPS_ASSERT(pivot.has_value(),
             "live cube with all conditions decided must have been caught");
  auto pos = context.conjoin(Literal{*pivot, true});
  auto neg = context.conjoin(Literal{*pivot, false});
  CPS_ASSERT(pos && neg, "pivot was undecided so both extensions exist");
  return covered_by_context(*pos) && covered_by_context(*neg);
}

bool Dnf::implies(const Dnf& other) const {
  // this -> other  iff  every cube of this is covered by other.
  for (const Cube& c : cubes_) {
    if (!other.covered_by_context(c)) return false;
  }
  return true;
}

std::vector<CondId> Dnf::mentioned_conditions() const {
  std::vector<CondId> out;
  for (const Cube& c : cubes_) {
    c.for_each([&out](Literal l) { out.push_back(l.cond); });
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Dnf::to_string(
    const std::function<std::string(CondId)>& name) const {
  if (cubes_.empty()) return "false";
  std::string out;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (i > 0) out += " | ";
    out += cubes_[i].to_string(name);
  }
  return out;
}

std::string Dnf::to_string() const {
  return to_string([](CondId c) { return "c" + std::to_string(c); });
}

}  // namespace cps
