#include "cond/condition_set.hpp"

#include <limits>

#include "support/error.hpp"

namespace cps {

CondId ConditionSet::add(const std::string& name) {
  CPS_REQUIRE(!name.empty(), "condition name must not be empty");
  CPS_REQUIRE(!contains(name), "duplicate condition name: " + name);
  CPS_REQUIRE(names_.size() < std::numeric_limits<CondId>::max(),
              "too many conditions");
  names_.push_back(name);
  return static_cast<CondId>(names_.size() - 1);
}

const std::string& ConditionSet::name(CondId id) const {
  CPS_REQUIRE(id < names_.size(), "condition id out of range");
  return names_[id];
}

CondId ConditionSet::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<CondId>(i);
  }
  throw InvalidArgument("unknown condition name: " + name);
}

bool ConditionSet::contains(const std::string& name) const {
  for (const auto& n : names_) {
    if (n == name) return true;
  }
  return false;
}

std::string ConditionSet::render(const Cube& cube) const {
  return cube.to_string([this](CondId c) { return name(c); });
}

std::string ConditionSet::render(const Dnf& dnf) const {
  return dnf.to_string([this](CondId c) { return name(c); });
}

std::string ConditionSet::render(Literal l) const {
  return (l.value ? "" : "!") + name(l.cond);
}

}  // namespace cps
