// CoverCache: memoization of DNF/cube intersection queries.
//
// The list scheduler asks `guard.covered_by_context(known)` for every
// ready-task candidate at every scheduling step, and the table merge
// re-asks the same questions for every adjusted path. The set of distinct
// (guard, context) pairs per co-synthesis is tiny compared to the number
// of queries, so a hash map keyed by the guard's identity and the context
// cube turns the repeated Shannon expansions into O(1) lookups.
//
// Keys use the *address* of the Dnf: guards live inside FlatGraph's task
// vector and are stable for the graph's lifetime. The cache must not
// outlive the FlatGraph it memoizes and is not thread-safe; use one cache
// per engine/merge invocation (the batch driver gives each worker its own
// graphs, and the speculative merger hands its pool workers no cache at
// all — their engines fall back to private per-run caches — so a cache is
// never shared across threads).
#pragma once

#include <cstddef>
#include <unordered_map>

#include "cond/dnf.hpp"

namespace cps {

class CoverCache {
 public:
  /// Memoized `dnf.covered_by_context(context)`.
  bool covered(const Dnf& dnf, const Cube& context);

  /// Memoized `dnf.and_cube(context).is_false()` (disjointness test).
  bool disjoint(const Dnf& dnf, const Cube& context);

  std::size_t size() const { return covered_.size() + disjoint_.size(); }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  void clear();

 private:
  struct Key {
    const Dnf* dnf = nullptr;
    Cube context;

    bool operator==(const Key& other) const {
      return dnf == other.dnf && context == other.context;
    }
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  std::unordered_map<Key, bool, KeyHash> covered_;
  std::unordered_map<Key, bool, KeyHash> disjoint_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace cps
