// CoverCache: memoization of DNF/cube intersection queries.
//
// The list scheduler asks `guard.covered_by_context(known)` for every
// ready-task candidate at every scheduling step, and the table merge
// re-asks the same questions for every adjusted path. The set of distinct
// (guard, context) pairs per co-synthesis is tiny compared to the number
// of queries, so a hash map keyed by the guard's identity and the context
// cube turns the repeated Shannon expansions into O(1) lookups. Contexts
// are packed cubes, so keys are allocation-free and hash in O(1) for
// models within the 64-condition fast path.
//
// The memo map is bounded: when the entry count reaches `max_entries` the
// map is cleared (a deterministic, query-sequence-driven reset counted in
// `resets`), so long batch runs cannot grow it without limit.
//
// Keys use the *address* of the Dnf: guards live inside FlatGraph's task
// vector and are stable for the graph's lifetime. The cache must not
// outlive the FlatGraph it memoizes and is not thread-safe; use one cache
// per engine/merge invocation (the batch driver gives each worker its own
// graphs, and the speculative merger hands its pool workers no cache at
// all — their engines fall back to private per-run caches — so a cache is
// never shared across threads).
#pragma once

#include <cstddef>
#include <unordered_map>

#include "cond/dnf.hpp"

namespace cps {

/// Counter snapshot surfaced through scheduler stats (driver, batch JSON).
struct CoverCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;  ///< live memo entries at snapshot time
  std::size_t resets = 0;   ///< size-cap evictions of the whole map

  /// Aggregate counters of several caches (parallel subtree jobs);
  /// `entries` becomes the sum of the per-cache snapshots.
  CoverCacheStats& operator+=(const CoverCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    entries += o.entries;
    resets += o.resets;
    return *this;
  }
};

class CoverCache {
 public:
  /// Default entry cap: ~32 bytes/entry keeps the memo under ~8 MiB.
  static constexpr std::size_t kDefaultMaxEntries = std::size_t{1} << 18;

  explicit CoverCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// Memoized `dnf.covered_by_context(context)`.
  bool covered(const Dnf& dnf, const Cube& context);

  /// Memoized `dnf.and_cube(context).is_false()` (disjointness test).
  bool disjoint(const Dnf& dnf, const Cube& context);

  std::size_t size() const { return covered_.size() + disjoint_.size(); }
  std::size_t max_entries() const { return max_entries_; }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t resets() const { return resets_; }
  CoverCacheStats stats() const {
    return CoverCacheStats{hits_, misses_, size(), resets_};
  }
  void clear();

 private:
  struct Key {
    const Dnf* dnf = nullptr;
    Cube context;

    bool operator==(const Key& other) const {
      return dnf == other.dnf && context == other.context;
    }
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  /// Deterministic size-cap enforcement, called before every insert.
  void evict_if_full();

  std::unordered_map<Key, bool, KeyHash> covered_;
  std::unordered_map<Key, bool, KeyHash> disjoint_;
  std::size_t max_entries_ = kDefaultMaxEntries;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t resets_ = 0;
};

}  // namespace cps
