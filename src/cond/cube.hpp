// Cube: a conjunction of condition literals.
//
// Cubes are the workhorse of the scheduler: path labels, decided-condition
// prefixes of the decision tree and schedule-table column headers are all
// cubes. The empty cube is the constant `true`.
//
// Representation: conditions with id < kPackedBits (64 — the same limit the
// engine's mention masks assume) live in an inline pos/neg bitmask pair, so
// conjoin / compatible / implies / hashing are a couple of word operations
// and carry no heap allocation. Larger condition ids overflow into a sorted
// literal vector (`wide` literals); every operation handles the mixed case,
// so models beyond 64 conditions keep working through the slow path and the
// two representations are equivalence-tested against each other.
//
// Invariant: a condition appears at most once (never in both pos and neg
// masks, never twice in the wide vector); a cube is therefore always
// satisfiable. Comparison and rendering order literals by condition id,
// exactly as the historical sorted-vector representation did.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cond/condition.hpp"

namespace cps {

class Cube {
 public:
  /// Largest condition id (exclusive) held in the packed masks; ids at or
  /// beyond it take the sorted-vector slow path.
  static constexpr CondId kPackedBits = 64;

  /// The empty conjunction, i.e. constant true.
  Cube() = default;

  /// Single-literal cube.
  explicit Cube(Literal l) { set_unchecked(l); }

  /// Build from arbitrary literals. Throws InvalidArgument if two literals
  /// contradict each other (use conjoin for a non-throwing combination).
  explicit Cube(const std::vector<Literal>& lits);

  static Cube top() { return Cube{}; }

  /// Cube from packed masks. `pos` and `neg` must be disjoint (the caller
  /// guarantees satisfiability; e.g. the engine's knowledge words).
  static Cube from_masks(std::uint64_t pos, std::uint64_t neg);

  bool is_true() const { return (pos_ | neg_) == 0 && wide_.empty(); }
  std::size_t size() const {
    return static_cast<std::size_t>(__builtin_popcountll(pos_ | neg_)) +
           wide_.size();
  }

  /// True when every mentioned condition fits the packed masks (no wide
  /// literals); the O(1) fast paths below are exact exactly then.
  bool narrow() const { return wide_.empty(); }

  /// Packed masks (conditions < kPackedBits only; wide literals excluded).
  std::uint64_t pos_bits() const { return pos_; }
  std::uint64_t neg_bits() const { return neg_; }
  std::uint64_t mention_bits() const { return pos_ | neg_; }

  /// Literals in condition order, materialized on demand. Hot paths should
  /// use the masks or for_each() instead.
  std::vector<Literal> literals() const;

  /// Visit every literal in condition order without materializing a vector.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t rest = pos_ | neg_;
    while (rest != 0) {
      const int c = __builtin_ctzll(rest);
      rest &= rest - 1;
      fn(Literal{static_cast<CondId>(c), ((pos_ >> c) & 1) != 0});
    }
    for (const Literal& l : wide_) fn(l);
  }

  /// Polarity of `cond` in this cube, or nullopt if unconstrained.
  std::optional<bool> value_of(CondId cond) const;
  bool mentions(CondId cond) const {
    if (cond < kPackedBits) return ((pos_ | neg_) >> cond) & 1;
    return value_of(cond).has_value();
  }

  /// Conjunction with a literal; nullopt if the result is contradictory.
  std::optional<Cube> conjoin(Literal l) const;

  /// Conjunction with another cube; nullopt if contradictory.
  std::optional<Cube> conjoin(const Cube& other) const;

  /// True when the two cubes agree on every shared condition, i.e. their
  /// conjunction is satisfiable. The paper's column-conflict test (§5.2)
  /// is `compatible && different start times`.
  bool compatible(const Cube& other) const {
    if ((pos_ & other.neg_) != 0 || (neg_ & other.pos_) != 0) return false;
    if (wide_.empty() || other.wide_.empty()) return true;
    return wide_compatible(other);
  }

  /// True when this cube implies `other` (every literal of `other` appears
  /// here). top() is implied by everything.
  bool implies(const Cube& other) const {
    if ((other.pos_ & ~pos_) != 0 || (other.neg_ & ~neg_) != 0) return false;
    if (other.wide_.empty()) return true;
    return wide_implies(other);
  }

  /// Remove the literal for `cond` if present.
  Cube without(CondId cond) const;

  /// True when every condition mentioned by this cube is also mentioned by
  /// `other` (regardless of polarity).
  bool conditions_subset_of(const Cube& other) const;

  /// Deterministic hash of the literal set (no allocation on narrow cubes).
  std::size_t hash() const;

  /// Render as e.g. "D & C & !K" using names from the callback; "true" for
  /// the empty cube.
  std::string to_string(
      const std::function<std::string(CondId)>& name) const;
  /// Render with bare numeric ids ("c0 & !c3").
  std::string to_string() const;

  friend bool operator==(const Cube& a, const Cube& b) {
    return a.pos_ == b.pos_ && a.neg_ == b.neg_ && a.wide_ == b.wide_;
  }
  friend bool operator!=(const Cube& a, const Cube& b) { return !(a == b); }
  /// Strict weak order identical to lexicographic comparison of the sorted
  /// literal vectors (the pre-packed representation), so every consumer
  /// that sorts cubes — DNF normalization, table column listings — keeps
  /// its historical deterministic order.
  friend bool operator<(const Cube& a, const Cube& b);

 private:
  void set_unchecked(Literal l);
  bool wide_compatible(const Cube& other) const;
  bool wide_implies(const Cube& other) const;

  std::uint64_t pos_ = 0;  ///< conditions < kPackedBits required true
  std::uint64_t neg_ = 0;  ///< conditions < kPackedBits required false
  std::vector<Literal> wide_;  ///< sorted literals with cond >= kPackedBits
};

}  // namespace cps

template <>
struct std::hash<cps::Cube> {
  std::size_t operator()(const cps::Cube& c) const noexcept {
    return c.hash();
  }
};
