// Cube: a conjunction of condition literals.
//
// Cubes are the workhorse of the scheduler: path labels, decided-condition
// prefixes of the decision tree and schedule-table column headers are all
// cubes. The empty cube is the constant `true`.
//
// Invariant: literals are sorted by condition id and no condition appears
// twice; a cube is therefore always satisfiable.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cond/condition.hpp"

namespace cps {

class Cube {
 public:
  /// The empty conjunction, i.e. constant true.
  Cube() = default;

  /// Single-literal cube.
  explicit Cube(Literal l) : lits_{l} {}

  /// Build from arbitrary literals. Throws InvalidArgument if two literals
  /// contradict each other (use conjoin for a non-throwing combination).
  explicit Cube(const std::vector<Literal>& lits);

  static Cube top() { return Cube{}; }

  bool is_true() const { return lits_.empty(); }
  std::size_t size() const { return lits_.size(); }
  const std::vector<Literal>& literals() const { return lits_; }

  /// Polarity of `cond` in this cube, or nullopt if unconstrained.
  std::optional<bool> value_of(CondId cond) const;
  bool mentions(CondId cond) const { return value_of(cond).has_value(); }

  /// Conjunction with a literal; nullopt if the result is contradictory.
  std::optional<Cube> conjoin(Literal l) const;

  /// Conjunction with another cube; nullopt if contradictory.
  std::optional<Cube> conjoin(const Cube& other) const;

  /// True when the two cubes agree on every shared condition, i.e. their
  /// conjunction is satisfiable. The paper's column-conflict test (§5.2)
  /// is `compatible && different start times`.
  bool compatible(const Cube& other) const;

  /// True when this cube implies `other` (every literal of `other` appears
  /// here). top() is implied by everything.
  bool implies(const Cube& other) const;

  /// Remove the literal for `cond` if present.
  Cube without(CondId cond) const;

  /// True when every condition mentioned by this cube is also mentioned by
  /// `other` (regardless of polarity).
  bool conditions_subset_of(const Cube& other) const;

  /// Render as e.g. "D & C & !K" using names from the callback; "true" for
  /// the empty cube.
  std::string to_string(
      const std::function<std::string(CondId)>& name) const;
  /// Render with bare numeric ids ("c0 & !c3").
  std::string to_string() const;

  friend bool operator==(const Cube& a, const Cube& b) {
    return a.lits_ == b.lits_;
  }
  friend bool operator!=(const Cube& a, const Cube& b) { return !(a == b); }
  friend bool operator<(const Cube& a, const Cube& b) {
    return a.lits_ < b.lits_;
  }

 private:
  std::vector<Literal> lits_;  // sorted by cond id, unique conditions
};

}  // namespace cps
