// Basic condition vocabulary: condition identifiers and literals.
//
// A *condition* is an independent boolean computed at run time by a
// disjunction process (paper §2). A *literal* is a condition together with a
// polarity; conjunctions of literals (cubes) label conditional edges, guard
// processes and head schedule-table columns.
#pragma once

#include <cstdint>
#include <functional>
#include <tuple>

namespace cps {

/// Index of a condition within a ConditionSet.
using CondId = std::uint16_t;

/// A condition with a polarity, e.g. "D" or "!D".
struct Literal {
  CondId cond = 0;
  bool value = true;

  Literal negated() const { return Literal{cond, !value}; }

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.cond == b.cond && a.value == b.value;
  }
  friend bool operator!=(const Literal& a, const Literal& b) {
    return !(a == b);
  }
  friend bool operator<(const Literal& a, const Literal& b) {
    return std::tie(a.cond, a.value) < std::tie(b.cond, b.value);
  }
};

}  // namespace cps

template <>
struct std::hash<cps::Literal> {
  std::size_t operator()(const cps::Literal& l) const noexcept {
    return (static_cast<std::size_t>(l.cond) << 1) | (l.value ? 1u : 0u);
  }
};
