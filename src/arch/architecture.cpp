#include "arch/architecture.hpp"

#include <limits>

namespace cps {

const char* to_string(PeKind kind) {
  switch (kind) {
    case PeKind::kProcessor: return "processor";
    case PeKind::kHardware: return "hardware";
    case PeKind::kBus: return "bus";
    case PeKind::kMemory: return "memory";
  }
  return "?";
}

PeId Architecture::add(ProcessingElement pe) {
  CPS_REQUIRE(!pe.name.empty(), "processing element name must not be empty");
  for (const auto& existing : pes_) {
    CPS_REQUIRE(existing.name != pe.name,
                "duplicate processing element name: " + pe.name);
  }
  CPS_REQUIRE(pes_.size() < std::numeric_limits<PeId>::max(),
              "too many processing elements");
  pe.id = static_cast<PeId>(pes_.size());
  pes_.push_back(std::move(pe));
  return pes_.back().id;
}

PeId Architecture::add_processor(const std::string& name, double speed) {
  CPS_REQUIRE(speed > 0.0, "processor speed must be positive");
  ProcessingElement pe;
  pe.kind = PeKind::kProcessor;
  pe.name = name;
  pe.speed = speed;
  return add(std::move(pe));
}

PeId Architecture::add_hardware(const std::string& name) {
  ProcessingElement pe;
  pe.kind = PeKind::kHardware;
  pe.name = name;
  return add(std::move(pe));
}

PeId Architecture::add_bus(const std::string& name, bool connects_all) {
  ProcessingElement pe;
  pe.kind = PeKind::kBus;
  pe.name = name;
  pe.connects_all = connects_all;
  return add(std::move(pe));
}

PeId Architecture::add_memory(const std::string& name) {
  ProcessingElement pe;
  pe.kind = PeKind::kMemory;
  pe.name = name;
  return add(std::move(pe));
}

const ProcessingElement& Architecture::pe(PeId id) const {
  CPS_REQUIRE(id < pes_.size(), "processing element id out of range");
  return pes_[id];
}

std::vector<PeId> Architecture::of_kind(PeKind kind) const {
  std::vector<PeId> out;
  for (const auto& pe : pes_) {
    if (pe.kind == kind) out.push_back(pe.id);
  }
  return out;
}

std::vector<PeId> Architecture::broadcast_buses() const {
  std::vector<PeId> out;
  for (const auto& pe : pes_) {
    if (pe.is_bus() && pe.connects_all) out.push_back(pe.id);
  }
  return out;
}

PeId Architecture::id_of(const std::string& name) const {
  for (const auto& pe : pes_) {
    if (pe.name == name) return pe.id;
  }
  throw InvalidArgument("unknown processing element: " + name);
}

void Architecture::set_cond_broadcast_time(Time t) {
  CPS_REQUIRE(t > 0, "condition broadcast time must be positive");
  cond_broadcast_time_ = t;
}

void Architecture::validate(bool require_broadcast_bus) const {
  CPS_REQUIRE(!pes_.empty(), "architecture has no processing elements");
  bool has_computation = false;
  for (const auto& pe : pes_) {
    if (pe.is_computation()) has_computation = true;
  }
  if (!has_computation) {
    throw ValidationError("architecture has no computation PE");
  }
  if (require_broadcast_bus && broadcast_buses().empty()) {
    throw ValidationError(
        "conditional models need at least one bus connecting all "
        "processors for condition broadcasts (paper section 3)");
  }
}

}  // namespace cps
