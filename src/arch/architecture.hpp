// Target architecture model (paper §2).
//
// An architecture consists of:
//  * programmable processors — execute one process at a time;
//  * hardware processors (ASICs) — execute processes in parallel;
//  * buses — carry one data transfer at a time; a bus may connect all
//    processors, in which case it can carry condition broadcasts (§3);
//  * memory modules — shared sequential resources used by the ATM/OAM
//    experiment (Table 2) for explicit memory-access processes.
//
// Programmable processors carry a `speed` factor so the same process-level
// cycle budgets can be evaluated on, say, a 486DX2/80 and a Pentium/120.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace cps {

/// Discrete model time (ticks; ns for the ATM experiment).
using Time = std::int64_t;

/// Index of a processing element within an Architecture.
using PeId = std::uint16_t;

enum class PeKind : std::uint8_t {
  kProcessor,  ///< programmable processor: mutual exclusion
  kHardware,   ///< ASIC: internal parallelism, no mutual exclusion
  kBus,        ///< communication bus: mutual exclusion
  kMemory,     ///< memory module: mutual exclusion (ATM experiment)
};

const char* to_string(PeKind kind);

struct ProcessingElement {
  PeId id = 0;
  PeKind kind = PeKind::kProcessor;
  std::string name;
  /// Relative speed of a programmable processor (execution time divisor).
  double speed = 1.0;
  /// For buses: does this bus reach every processor (so it can carry
  /// condition broadcasts)? Ignored for other kinds.
  bool connects_all = false;

  bool is_bus() const { return kind == PeKind::kBus; }
  bool is_computation() const {
    return kind == PeKind::kProcessor || kind == PeKind::kHardware;
  }
  /// Can two items overlap on this PE? Only hardware allows it.
  bool sequential() const { return kind != PeKind::kHardware; }
};

class Architecture {
 public:
  PeId add_processor(const std::string& name, double speed = 1.0);
  PeId add_hardware(const std::string& name);
  PeId add_bus(const std::string& name, bool connects_all = true);
  PeId add_memory(const std::string& name);

  std::size_t pe_count() const { return pes_.size(); }
  const ProcessingElement& pe(PeId id) const;

  /// Ids of PEs of a given kind, in creation order.
  std::vector<PeId> of_kind(PeKind kind) const;
  std::vector<PeId> processors() const { return of_kind(PeKind::kProcessor); }
  std::vector<PeId> buses() const { return of_kind(PeKind::kBus); }

  /// Buses flagged as connecting all processors (broadcast candidates).
  std::vector<PeId> broadcast_buses() const;

  /// Lookup by name; throws InvalidArgument if absent.
  PeId id_of(const std::string& name) const;

  /// Time to broadcast one condition value on a broadcast bus (τ0, §3).
  Time cond_broadcast_time() const { return cond_broadcast_time_; }
  void set_cond_broadcast_time(Time t);

  /// Sanity checks: non-empty, unique names, at least one computation PE.
  /// If `require_broadcast_bus`, at least one all-connecting bus must
  /// exist (needed as soon as the model has conditions and >1 PE).
  void validate(bool require_broadcast_bus) const;

 private:
  PeId add(ProcessingElement pe);

  std::vector<ProcessingElement> pes_;
  Time cond_broadcast_time_ = 1;
};

}  // namespace cps
