#include "graph/dot.hpp"

namespace cps {

namespace {

std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void write_dot(std::ostream& os, const Digraph& g, const DotStyle& style) {
  os << "digraph " << style.graph_name << " {\n";
  os << "  rankdir=TB;\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::string label =
        style.node_label ? style.node_label(v) : "n" + std::to_string(v);
    os << "  n" << v << " [label=\"" << escape_label(label) << "\"";
    if (style.node_attrs) {
      const std::string attrs = style.node_attrs(v);
      if (!attrs.empty()) os << ", " << attrs;
    }
    os << "];\n";
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    os << "  n" << edge.src << " -> n" << edge.dst;
    std::string inner;
    if (style.edge_label) {
      const std::string label = style.edge_label(e);
      if (!label.empty()) inner = "label=\"" + escape_label(label) + "\"";
    }
    if (style.edge_attrs) {
      const std::string attrs = style.edge_attrs(e);
      if (!attrs.empty()) {
        if (!inner.empty()) inner += ", ";
        inner += attrs;
      }
    }
    if (!inner.empty()) os << " [" << inner << "]";
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace cps
