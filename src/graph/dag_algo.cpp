#include "graph/dag_algo.hpp"

#include <algorithm>

namespace cps {

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> pending(n);
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (EdgeId e : g.out_edges(v)) {
      const NodeId w = g.edge(e).dst;
      if (--pending[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

namespace {

std::int64_t edge_w(const std::vector<std::int64_t>& edge_weight, EdgeId e) {
  return edge_weight.empty() ? 0 : edge_weight[e];
}

}  // namespace

std::vector<std::int64_t> longest_path_into(
    const Digraph& g, const std::vector<std::int64_t>& node_weight,
    const std::vector<std::int64_t>& edge_weight) {
  CPS_REQUIRE(node_weight.size() == g.node_count(),
              "node weight vector size mismatch");
  CPS_REQUIRE(edge_weight.empty() || edge_weight.size() == g.edge_count(),
              "edge weight vector size mismatch");
  auto order = topological_order(g);
  CPS_REQUIRE(order.has_value(), "longest_path_into requires a DAG");
  std::vector<std::int64_t> dist(g.node_count());
  for (NodeId v : *order) {
    std::int64_t best = 0;
    for (EdgeId e : g.in_edges(v)) {
      const NodeId u = g.edge(e).src;
      best = std::max(best, dist[u] + edge_w(edge_weight, e));
    }
    dist[v] = best + node_weight[v];
  }
  return dist;
}

std::vector<std::int64_t> longest_path_from(
    const Digraph& g, const std::vector<std::int64_t>& node_weight,
    const std::vector<std::int64_t>& edge_weight) {
  CPS_REQUIRE(node_weight.size() == g.node_count(),
              "node weight vector size mismatch");
  CPS_REQUIRE(edge_weight.empty() || edge_weight.size() == g.edge_count(),
              "edge weight vector size mismatch");
  auto order = topological_order(g);
  CPS_REQUIRE(order.has_value(), "longest_path_from requires a DAG");
  std::vector<std::int64_t> dist(g.node_count());
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    std::int64_t best = 0;
    for (EdgeId e : g.out_edges(v)) {
      const NodeId w = g.edge(e).dst;
      best = std::max(best, dist[w] + edge_w(edge_weight, e));
    }
    dist[v] = best + node_weight[v];
  }
  return dist;
}

namespace {

std::vector<bool> flood(const Digraph& g, NodeId start, bool forward) {
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack{start};
  seen[start] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const auto& edges = forward ? g.out_edges(v) : g.in_edges(v);
    for (EdgeId e : edges) {
      const NodeId w = forward ? g.edge(e).dst : g.edge(e).src;
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<bool> reachable_from(const Digraph& g, NodeId start) {
  CPS_REQUIRE(start < g.node_count(), "node id out of range");
  return flood(g, start, /*forward=*/true);
}

std::vector<bool> reaching(const Digraph& g, NodeId target) {
  CPS_REQUIRE(target < g.node_count(), "node id out of range");
  return flood(g, target, /*forward=*/false);
}

bool is_polar(const Digraph& g, NodeId source, NodeId sink) {
  if (source >= g.node_count() || sink >= g.node_count()) return false;
  if (g.in_degree(source) != 0 || g.out_degree(sink) != 0) return false;
  const auto fwd = reachable_from(g, source);
  const auto bwd = reaching(g, sink);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!fwd[v] || !bwd[v]) return false;
  }
  return true;
}

}  // namespace cps
