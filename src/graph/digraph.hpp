// Compact directed graph with stable integer node/edge ids.
//
// The CPG model and the expanded (communication-inserted) graph both sit on
// top of this structure; algorithms (graph/dag_algo.hpp) work on it
// directly so they can be tested independently of scheduling concerns.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace cps {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

class Digraph {
 public:
  struct Edge {
    NodeId src = 0;
    NodeId dst = 0;
  };

  Digraph() = default;
  explicit Digraph(std::size_t node_count) { resize(node_count); }

  void resize(std::size_t node_count);
  NodeId add_node();
  EdgeId add_edge(NodeId src, NodeId dst);

  std::size_t node_count() const { return out_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const Edge& edge(EdgeId e) const {
    CPS_REQUIRE(e < edges_.size(), "edge id out of range");
    return edges_[e];
  }

  /// Out-/in-edge ids of a node, in insertion order.
  const std::vector<EdgeId>& out_edges(NodeId n) const {
    CPS_REQUIRE(n < out_.size(), "node id out of range");
    return out_[n];
  }
  const std::vector<EdgeId>& in_edges(NodeId n) const {
    CPS_REQUIRE(n < in_.size(), "node id out of range");
    return in_[n];
  }

  std::size_t out_degree(NodeId n) const { return out_edges(n).size(); }
  std::size_t in_degree(NodeId n) const { return in_edges(n).size(); }

  /// True if an edge src->dst already exists (linear in out-degree).
  bool has_edge(NodeId src, NodeId dst) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace cps
