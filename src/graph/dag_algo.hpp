// DAG algorithms: topological order, cycle detection, longest paths,
// reachability. These back guard propagation, list-scheduling priorities
// and graph validation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace cps {

/// Topological order of all nodes, or nullopt if the graph has a cycle.
std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

inline bool is_acyclic(const Digraph& g) {
  return topological_order(g).has_value();
}

/// Longest path *to* each node from any source node, where a node
/// contributes `node_weight[n]` and edges contribute `edge_weight[e]`
/// (pass empty vector for zero edge weights). Entry-level nodes start at
/// their own weight. Requires an acyclic graph.
std::vector<std::int64_t> longest_path_into(
    const Digraph& g, const std::vector<std::int64_t>& node_weight,
    const std::vector<std::int64_t>& edge_weight);

/// Longest path *from* each node to any sink node (inclusive of the node's
/// own weight); the classic list-scheduling urgency metric.
std::vector<std::int64_t> longest_path_from(
    const Digraph& g, const std::vector<std::int64_t>& node_weight,
    const std::vector<std::int64_t>& edge_weight);

/// All nodes reachable from `start` (including it).
std::vector<bool> reachable_from(const Digraph& g, NodeId start);

/// All nodes that can reach `target` (including it).
std::vector<bool> reaching(const Digraph& g, NodeId target);

/// True if the graph is polar with the given source/sink: every node is
/// reachable from `source` and reaches `sink`, `source` has no in-edges and
/// `sink` no out-edges.
bool is_polar(const Digraph& g, NodeId source, NodeId sink);

}  // namespace cps
