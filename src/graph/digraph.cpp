#include "graph/digraph.hpp"

namespace cps {

void Digraph::resize(std::size_t node_count) {
  CPS_REQUIRE(node_count >= out_.size(), "Digraph::resize cannot shrink");
  out_.resize(node_count);
  in_.resize(node_count);
}

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

EdgeId Digraph::add_edge(NodeId src, NodeId dst) {
  CPS_REQUIRE(src < out_.size() && dst < out_.size(),
              "edge endpoint out of range");
  CPS_REQUIRE(src != dst, "self edges are not allowed");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst});
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

bool Digraph::has_edge(NodeId src, NodeId dst) const {
  for (EdgeId e : out_edges(src)) {
    if (edges_[e].dst == dst) return true;
  }
  return false;
}

}  // namespace cps
