// Graphviz DOT export for generic digraphs (labels supplied by callbacks).
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "graph/digraph.hpp"

namespace cps {

struct DotStyle {
  /// Node label; defaults to "n<i>".
  std::function<std::string(NodeId)> node_label;
  /// Extra node attributes, e.g. "shape=box" (may be empty).
  std::function<std::string(NodeId)> node_attrs;
  /// Edge label (may be empty).
  std::function<std::string(EdgeId)> edge_label;
  /// Extra edge attributes (may be empty).
  std::function<std::string(EdgeId)> edge_attrs;
  std::string graph_name = "g";
};

/// Write the graph in DOT syntax.
void write_dot(std::ostream& os, const Digraph& g, const DotStyle& style);

}  // namespace cps
